#include "core/point_selection.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace adam2::core {
namespace {

using stats::CdfPoint;
using stats::PiecewiseLinearCdf;

/// Knot range of the previous interpolation: [min, max] anchors.
struct Range {
  double lo;
  double hi;
};

Range knot_range(const PiecewiseLinearCdf& prev) {
  assert(!prev.empty());
  return {prev.knots().front().t, prev.knots().back().t};
}

}  // namespace

std::vector<double> sanitize_thresholds(std::vector<double> ts, double lo,
                                        double hi, std::size_t lambda) {
  assert(hi >= lo);
  if (lambda == 0) return {};
  if (hi <= lo) {
    // Degenerate attribute range: all thresholds collapse onto the single
    // value; return lambda copies spread over a unit span so encoding sizes
    // stay constant.
    std::vector<double> flat(lambda);
    for (std::size_t i = 0; i < lambda; ++i) {
      flat[i] = lo + static_cast<double>(i) * 1e-9;
    }
    return flat;
  }

  // Keep thresholds strictly inside (lo, hi): the anchors (min,0) and (max,1)
  // already pin the ends of the curve.
  std::erase_if(ts, [&](double t) {
    return !(t > lo && t < hi) || !std::isfinite(t);
  });
  std::sort(ts.begin(), ts.end());
  const double tolerance = (hi - lo) * 1e-12;
  ts.erase(std::unique(ts.begin(), ts.end(),
                       [&](double a, double b) { return b - a <= tolerance; }),
           ts.end());

  // Too many: keep an evenly spread subset (preserves the heuristic's shape).
  if (ts.size() > lambda) {
    std::vector<double> kept;
    kept.reserve(lambda);
    for (std::size_t i = 0; i < lambda; ++i) {
      const std::size_t idx = i * ts.size() / lambda;
      kept.push_back(ts[idx]);
    }
    ts = std::move(kept);
  }

  // Too few: repeatedly split the widest gap (anchors included).
  while (ts.size() < lambda) {
    double best_gap = -1.0;
    std::size_t best_slot = 0;  // Insert before ts[best_slot].
    double prev_t = lo;
    for (std::size_t i = 0; i <= ts.size(); ++i) {
      const double next_t = i < ts.size() ? ts[i] : hi;
      const double gap = next_t - prev_t;
      if (gap > best_gap) {
        best_gap = gap;
        best_slot = i;
      }
      prev_t = next_t;
    }
    const double left = best_slot == 0 ? lo : ts[best_slot - 1];
    const double right = best_slot == ts.size() ? hi : ts[best_slot];
    ts.insert(ts.begin() + static_cast<std::ptrdiff_t>(best_slot),
              (left + right) / 2.0);
  }
  return ts;
}

std::vector<double> uniform_thresholds(double lo, double hi,
                                       std::size_t lambda) {
  std::vector<double> ts;
  ts.reserve(lambda);
  const double step = (hi - lo) / static_cast<double>(lambda + 1);
  for (std::size_t i = 1; i <= lambda; ++i) {
    ts.push_back(lo + step * static_cast<double>(i));
  }
  return sanitize_thresholds(std::move(ts), lo, hi, lambda);
}

std::vector<double> neighbour_thresholds(
    std::span<const stats::Value> neighbour_values, std::size_t lambda,
    rng::Rng& rng) {
  if (neighbour_values.empty()) return uniform_thresholds(0.0, 1.0, lambda);

  std::vector<stats::Value> distinct(neighbour_values.begin(),
                                     neighbour_values.end());
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  const double lo = static_cast<double>(distinct.front());
  const double hi = static_cast<double>(distinct.back());

  std::vector<double> ts;
  ts.reserve(lambda);
  if (distinct.size() <= lambda) {
    for (stats::Value v : distinct) ts.push_back(static_cast<double>(v));
  } else {
    // Random subset of the observed values (§VII-B).
    for (std::size_t idx : rng.sample_indices(distinct.size(), lambda)) {
      ts.push_back(static_cast<double>(distinct[idx]));
    }
  }
  // The sampled extremes land on the anchors and would be dropped; nudge the
  // range outward a little so they survive as interior points.
  const double margin = std::max((hi - lo) * 0.01, 1.0);
  return sanitize_thresholds(std::move(ts), lo - margin, hi + margin, lambda);
}

std::vector<double> hcut(const PiecewiseLinearCdf& prev, std::size_t lambda) {
  const Range range = knot_range(prev);
  std::vector<double> ts;
  ts.reserve(lambda);
  for (std::size_t i = 1; i <= lambda; ++i) {
    const double q =
        static_cast<double>(i) / static_cast<double>(lambda + 1);
    ts.push_back(prev.inverse(q));
  }
  return sanitize_thresholds(std::move(ts), range.lo, range.hi, lambda);
}

std::vector<double> minmax(const PiecewiseLinearCdf& prev, std::size_t lambda) {
  const Range range = knot_range(prev);
  // H starts as the previous interpolation (anchors included) and is edited
  // in place; Hold only ever loses points, so Hold is always a subset of H.
  std::vector<CdfPoint> h(prev.knots().begin(), prev.knots().end());
  std::vector<CdfPoint> hold = h;

  const auto widest_gap = [](const std::vector<CdfPoint>& pts) {
    std::size_t best = 1;
    double gap = -1.0;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      const double g = std::abs(pts[i].f - pts[i - 1].f);
      if (g > gap) {
        gap = g;
        best = i;
      }
    }
    return std::pair{best, gap};
  };
  // Narrowest cluster of three consecutive points, interior midpoint only.
  const auto narrowest_cluster = [](const std::vector<CdfPoint>& pts) {
    std::size_t best = 0;
    double gap = std::numeric_limits<double>::infinity();
    for (std::size_t m = 1; m + 1 < pts.size(); ++m) {
      const double g = std::abs(pts[m + 1].f - pts[m - 1].f);
      if (g < gap) {
        gap = g;
        best = m;
      }
    }
    return std::pair{best, gap};
  };

  // Each iteration removes one interior point of Hold, so the loop is
  // bounded; guard anyway against pathological floating-point ties.
  for (std::size_t iter = 0; iter < lambda + 2 && hold.size() > 2; ++iter) {
    const auto [n, widest] = widest_gap(h);
    const auto [m, narrowest] = narrowest_cluster(hold);
    if (!(widest > narrowest)) break;

    const CdfPoint removed = hold[m];
    hold.erase(hold.begin() + static_cast<std::ptrdiff_t>(m));
    // The same point still exists in H (Hold is a subset of H); drop it.
    auto in_h = std::find_if(h.begin(), h.end(), [&](const CdfPoint& p) {
      return p.t == removed.t && p.f == removed.f;
    });
    if (in_h != h.end()) h.erase(in_h);

    // Split the widest gap of H at its midpoint. Indices may have shifted
    // after the erase, so re-find the widest pair.
    const auto [n2, gap2] = widest_gap(h);
    (void)n;
    (void)gap2;
    const CdfPoint mid{(h[n2].t + h[n2 - 1].t) / 2.0,
                       (h[n2].f + h[n2 - 1].f) / 2.0};
    h.insert(h.begin() + static_cast<std::ptrdiff_t>(n2), mid);
  }

  std::vector<double> ts;
  ts.reserve(h.size());
  for (const CdfPoint& p : h) ts.push_back(p.t);
  return sanitize_thresholds(std::move(ts), range.lo, range.hi, lambda);
}

std::vector<double> lcut(const PiecewiseLinearCdf& prev, std::size_t lambda) {
  const Range range = knot_range(prev);
  const double scale = std::max(range.hi - range.lo, 1e-300);
  const double total = prev.arc_length(scale);
  if (total <= 0.0) return uniform_thresholds(range.lo, range.hi, lambda);

  const auto knots = prev.knots();
  std::vector<double> ts;
  ts.reserve(lambda);
  const double step = total / static_cast<double>(lambda + 1);
  double next_target = step;
  double walked = 0.0;
  for (std::size_t i = 1; i < knots.size() && ts.size() < lambda; ++i) {
    const double dt = (knots[i].t - knots[i - 1].t) / scale;
    const double df = knots[i].f - knots[i - 1].f;
    const double seg = std::hypot(dt, df);
    while (seg > 0.0 && walked + seg >= next_target && ts.size() < lambda) {
      const double w = (next_target - walked) / seg;
      ts.push_back(knots[i - 1].t + w * (knots[i].t - knots[i - 1].t));
      next_target += step;
    }
    walked += seg;
  }
  return sanitize_thresholds(std::move(ts), range.lo, range.hi, lambda);
}

std::vector<double> bisection_thresholds(const PiecewiseLinearCdf& prev,
                                         std::size_t count) {
  const Range range = knot_range(prev);
  if (count == 0) return {};

  // Interval = (t_lo, t_hi, vertical gap). Splitting an interval at its
  // midpoint halves the gap (the interpolation is linear inside it).
  struct Interval {
    double lo, hi, gap;
  };
  std::vector<Interval> intervals;
  const auto knots = prev.knots();
  for (std::size_t i = 1; i < knots.size(); ++i) {
    intervals.push_back({knots[i - 1].t, knots[i].t,
                         std::abs(knots[i].f - knots[i - 1].f)});
  }
  std::vector<double> ts;
  ts.reserve(count);
  while (ts.size() < count && !intervals.empty()) {
    auto widest = std::max_element(
        intervals.begin(), intervals.end(),
        [](const Interval& a, const Interval& b) { return a.gap < b.gap; });
    const double mid = (widest->lo + widest->hi) / 2.0;
    ts.push_back(mid);
    const Interval right{mid, widest->hi, widest->gap / 2.0};
    *widest = {widest->lo, mid, widest->gap / 2.0};
    intervals.push_back(right);
  }
  return sanitize_thresholds(std::move(ts), range.lo, range.hi, count);
}

std::vector<double> select_points(const PiecewiseLinearCdf& prev,
                                  std::size_t lambda,
                                  SelectionHeuristic heuristic) {
  switch (heuristic) {
    case SelectionHeuristic::kHCut: return hcut(prev, lambda);
    case SelectionHeuristic::kMinMax: return minmax(prev, lambda);
    case SelectionHeuristic::kLCut: return lcut(prev, lambda);
  }
  assert(false && "unknown heuristic");
  return {};
}

}  // namespace adam2::core
