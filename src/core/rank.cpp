#include "core/rank.hpp"

#include <algorithm>
#include <cassert>

namespace adam2::core {

RankInfo rank_of(const Estimate& estimate, double own_value) {
  assert(!estimate.cdf.empty());
  RankInfo info;
  info.percentile = estimate.cdf(own_value);
  info.n_estimate = estimate.n_estimate;
  // Fractional 1-based rank; F(min) nodes share the bottom position.
  info.rank = std::max(1.0, info.percentile * estimate.n_estimate);
  return info;
}

std::size_t slice_of(const Estimate& estimate, double own_value,
                     std::size_t slices) {
  assert(slices >= 1);
  const double percentile = estimate.cdf(own_value);
  auto slice = static_cast<std::size_t>(percentile * static_cast<double>(slices));
  return std::min(slice, slices - 1);  // percentile == 1 maps to the last.
}

std::vector<double> slice_boundaries(const Estimate& estimate,
                                     std::size_t slices) {
  assert(slices >= 1);
  assert(!estimate.cdf.empty());
  std::vector<double> boundaries;
  boundaries.reserve(slices - 1);
  for (std::size_t i = 1; i < slices; ++i) {
    boundaries.push_back(estimate.cdf.inverse(
        static_cast<double>(i) / static_cast<double>(slices)));
  }
  return boundaries;
}

ShapeSummary summarize_shape(const Estimate& estimate) {
  assert(!estimate.cdf.empty());
  ShapeSummary summary;
  summary.q25 = estimate.cdf.inverse(0.25);
  summary.median = estimate.cdf.inverse(0.50);
  summary.q75 = estimate.cdf.inverse(0.75);
  summary.p95 = estimate.cdf.inverse(0.95);
  const double iqr = summary.q75 - summary.q25;
  if (iqr > 0.0) {
    summary.quartile_skew =
        (summary.q75 + summary.q25 - 2.0 * summary.median) / iqr;
  }
  const double range = estimate.max_value - estimate.min_value;
  if (range > 0.0) {
    summary.upper_tail_span = (estimate.max_value - summary.p95) / range;
  }
  return summary;
}

}  // namespace adam2::core
