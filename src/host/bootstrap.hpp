// Join-time state transfer shared by every substrate (§IV: joining nodes are
// bootstrapped by their initial neighbours; DESIGN §1 decision 4).
#pragma once

#include "host/node.hpp"
#include "host/overlay.hpp"
#include "host/registry.hpp"
#include "host/traffic.hpp"
#include "host/view.hpp"

namespace adam2::host {

struct BootstrapPolicy {
  /// A joiner keeps asking neighbours until one supplies a usable state or
  /// this many attempts fail — a dead contact or a neighbour that churned in
  /// moments ago and has nothing yet must not leave the newcomer permanently
  /// uninitialised.
  int attempts = 4;
};

/// Runs the bootstrap retry loop for a freshly spawned `joiner` that is
/// already wired into `overlay`. Contact picks come from the joiner's control
/// stream; failed contacts are counted on the joiner and on `totals`;
/// transferred bytes go through `host.record_traffic` on the bootstrap
/// channel. No-op when the joiner's agent declines to bootstrap (empty
/// request).
void bootstrap_joiner(Node& joiner, NodeTable& table, Overlay& overlay,
                      HostView& host, Round round, TrafficStats& totals,
                      const BootstrapPolicy& policy = {});

}  // namespace adam2::host
