#include "host/fault.hpp"

namespace adam2::host {

namespace {

// Distinct stateless-derivation tags so the per-node fault stream and the
// partition assignment are decorrelated from each other and from everything
// seeded elsewhere in the system.
constexpr std::uint64_t kNodeStreamTag = 0x632be59bd9b4e019ULL;
constexpr std::uint64_t kPartitionTag = 0x2545f4914f6cdd1dULL;

}  // namespace

rng::Rng FaultInjector::node_stream(NodeId id) const noexcept {
  std::uint64_t material =
      plan_.seed ^ ((id + kNodeStreamTag) * 0x9e3779b97f4a7c15ULL);
  return rng::Rng{rng::split_mix64(material)};
}

MessageFate FaultInjector::message_fate(rng::Rng& stream) const noexcept {
  if (!plan_.message_faults()) return MessageFate::kDeliver;
  // Always three draws so the stream advances identically whatever the
  // outcome — replaying a plan with one rate changed perturbs only the
  // decisions, not the alignment of later draws.
  const bool drop = stream.bernoulli(plan_.drop_rate);
  const bool corrupt = stream.bernoulli(plan_.corrupt_rate);
  const bool duplicate = stream.bernoulli(plan_.duplicate_rate);
  if (drop) return MessageFate::kDrop;
  if (corrupt) return MessageFate::kCorrupt;
  if (duplicate) return MessageFate::kDuplicate;
  return MessageFate::kDeliver;
}

double FaultInjector::extra_delay(rng::Rng& stream) const noexcept {
  if (plan_.delay_rate <= 0.0 || plan_.max_delay <= 0.0) return 0.0;
  if (!stream.bernoulli(plan_.delay_rate)) return 0.0;
  return stream.uniform(0.0, plan_.max_delay);
}

bool FaultInjector::crashes(rng::Rng& stream) const noexcept {
  if (plan_.crash_rate <= 0.0) return false;
  return stream.bernoulli(plan_.crash_rate);
}

std::vector<std::byte> FaultInjector::corrupt(std::span<const std::byte> bytes,
                                              rng::Rng& stream) const {
  std::vector<std::byte> out(bytes.begin(), bytes.end());
  if (out.empty()) return out;
  if (stream.bernoulli(0.5)) {
    // Truncation: cut strictly short, possibly to an empty datagram.
    out.resize(static_cast<std::size_t>(stream.below(out.size())));
  } else {
    // Byte flips: 1–4 positions XORed with a non-zero mask, so the payload
    // always differs from what was sent.
    const std::uint64_t flips = 1 + stream.below(4);
    for (std::uint64_t i = 0; i < flips; ++i) {
      const std::size_t pos = static_cast<std::size_t>(stream.below(out.size()));
      out[pos] ^= static_cast<std::byte>(1 + stream.below(255));
    }
  }
  return out;
}

bool FaultInjector::partition_active(Round round) const noexcept {
  if (plan_.partition_count < 2) return false;
  if (round < plan_.partition_start) return false;
  if (plan_.partition_heal_after > 0 &&
      round >= plan_.partition_start + plan_.partition_heal_after) {
    return false;
  }
  return true;
}

std::size_t FaultInjector::partition_of(NodeId id) const noexcept {
  std::uint64_t material =
      plan_.seed ^ kPartitionTag ^ (id * 0x9e3779b97f4a7c15ULL);
  return static_cast<std::size_t>(rng::split_mix64(material) %
                                  plan_.partition_count);
}

bool FaultInjector::partitioned(NodeId a, NodeId b, Round round) const noexcept {
  if (!partition_active(round)) return false;
  return partition_of(a) != partition_of(b);
}

}  // namespace adam2::host
