// The narrow interface substrate components may call back into. Every
// agent-hosting substrate (cycle-driven or event-driven simulator, threaded
// cluster, UDP peer directory) implements this seam; overlays, agents and the
// evaluation layer never see anything wider.
#pragma once

#include <cstddef>
#include <span>

#include "host/types.hpp"
#include "stats/cdf.hpp"

namespace adam2::host {

class HostView {
 public:
  virtual ~HostView() = default;

  [[nodiscard]] virtual bool is_live(NodeId id) const = 0;
  [[nodiscard]] virtual stats::Value attribute_of(NodeId id) const = 0;
  [[nodiscard]] virtual Round round() const = 0;
  [[nodiscard]] virtual std::span<const NodeId> live_ids() const = 0;

  /// Records one message of `bytes` bytes from `sender` to `receiver`.
  virtual void record_traffic(NodeId sender, NodeId receiver, Channel channel,
                              std::size_t bytes) = 0;
};

}  // namespace adam2::host
