// Thread-safe traffic ledger for the threaded runtimes (Cluster, UDP peers),
// where many node threads record traffic concurrently.
#pragma once

#include <cstddef>
#include <mutex>

#include "host/traffic.hpp"
#include "host/types.hpp"

namespace adam2::host {

class SharedTrafficLedger {
 public:
  /// Counts one message of `bytes` bytes as sent and received on `channel`
  /// (the global view of a point-to-point transfer).
  void record_message(Channel channel, std::size_t bytes) {
    std::lock_guard lock(mutex_);
    totals_.on(channel).add_send(bytes);
    totals_.on(channel).add_receive(bytes);
  }

  void count_failed_contact() {
    std::lock_guard lock(mutex_);
    ++totals_.failed_contacts;
  }

  void count_dropped_message() {
    std::lock_guard lock(mutex_);
    ++totals_.dropped_messages;
  }

  void count_busy_rejection() {
    std::lock_guard lock(mutex_);
    ++totals_.busy_rejections;
  }

  /// Merges a batch of per-node counters (e.g. on node shutdown).
  void merge(const TrafficStats& stats) {
    std::lock_guard lock(mutex_);
    totals_ += stats;
  }

  [[nodiscard]] TrafficStats snapshot() const {
    std::lock_guard lock(mutex_);
    return totals_;
  }

 private:
  mutable std::mutex mutex_;
  TrafficStats totals_;
};

}  // namespace adam2::host
