// Overlay abstraction: who can gossip with whom.
//
// The paper's system model (§III) organises peers in a P2P overlay where each
// peer maintains links to a small number of randomly selected neighbours, and
// neighbour sets change over time through gossip-based peer sampling [11].
// Concrete implementations (StaticRandomOverlay, CyclonOverlay) live in the
// sim library; this abstract seam lives in host so every substrate — and the
// shared bootstrap policy — can use an overlay without depending on sim.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "host/types.hpp"
#include "host/view.hpp"
#include "rng/rng.hpp"
#include "stats/cdf.hpp"
#include "wire/buffer.hpp"

namespace adam2::host {

class Overlay {
 public:
  virtual ~Overlay() = default;

  /// Builds the initial topology over `ids`. Default: add nodes one by one.
  virtual void build_initial(std::span<const NodeId> ids, const HostView& host,
                             rng::Rng& rng);

  /// Wires a (new) node into the overlay using currently live peers.
  virtual void add_node(NodeId id, const HostView& host, rng::Rng& rng) = 0;

  /// Tears a departed node out of the overlay (its links become stale).
  virtual void remove_node(NodeId id) = 0;

  /// A uniformly random current neighbour to gossip with; nullopt when the
  /// node has no usable neighbour. The returned node may be dead — the engine
  /// detects that and records a failed contact, as a real system would.
  [[nodiscard]] virtual std::optional<NodeId> pick_gossip_target(
      NodeId id, rng::Rng& rng) const = 0;

  /// Current neighbour ids of `id` (for inspection and bootstrap).
  [[nodiscard]] virtual std::vector<NodeId> neighbors(NodeId id) const = 0;

  /// Attribute values of peers this node has (recently) learned about, used
  /// by the neighbour-based interpolation-point bootstrap (§V). For static
  /// overlays these are the direct neighbours' values; Cyclon additionally
  /// caches values carried by shuffled descriptors.
  [[nodiscard]] virtual std::vector<stats::Value> known_attribute_values(
      NodeId id, const HostView& host) const = 0;

  /// Per-round maintenance (e.g. Cyclon view shuffles). Default: none.
  virtual void maintain(HostView& host, rng::Rng& rng);

  // -- Checkpoint hooks (host::snapshot, DESIGN.md §12) ----------------------
  //
  // snapshot_kind() tags the concrete overlay type inside a checkpoint so a
  // restore into a differently-configured engine is rejected instead of
  // misinterpreted (0 = stateless: nothing to save, restore is a no-op).
  // save_state/restore_state follow the NodeAgent contract: canonical
  // re-encode, bit-identical behaviour after restore.
  [[nodiscard]] virtual std::uint32_t snapshot_kind() const { return 0; }
  virtual void save_state(wire::Writer& /*out*/) const {}
  /// Throws wire::DecodeError on malformed input. Implementations must
  /// consume the reader completely (expect_done) and commit only after the
  /// full parse succeeds, so a rejected blob leaves the overlay untouched.
  virtual void restore_state(wire::Reader& /*in*/) {}
};

}  // namespace adam2::host
