#include "host/snapshot.hpp"

#include <cassert>
#include <cstdio>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define ADAM2_SNAPSHOT_HAVE_FSYNC 1
#endif

namespace adam2::host::snapshot {

std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::byte b : bytes) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

namespace {

/// Reads a u8 that must encode a bool; anything but 0/1 is rejected so a
/// mutated flag byte cannot survive as an accepted-but-noncanonical restore.
bool read_bool(wire::Reader& in, const char* what) {
  const std::uint8_t v = in.u8();
  if (v > 1) {
    throw wire::DecodeError(std::string("non-canonical flag byte in ") + what);
  }
  return v != 0;
}

}  // namespace

void write_rng(wire::Writer& out, const rng::Rng& rng) {
  const rng::Rng::State state = rng.state();
  for (std::uint64_t word : state.words) out.u64(word);
  out.f64(state.cached_normal);
  out.u8(state.has_cached_normal ? 1 : 0);
}

void read_rng(wire::Reader& in, rng::Rng& rng) {
  rng::Rng::State state;
  for (std::uint64_t& word : state.words) word = in.u64();
  state.cached_normal = in.f64();
  state.has_cached_normal = read_bool(in, "rng state");
  // Canonical form: no cached normal means a zero payload (what state()
  // reports after the cache is consumed), so re-encode is byte-stable.
  if (!state.has_cached_normal && state.cached_normal != 0.0) {
    throw wire::DecodeError("non-canonical cached normal in rng state");
  }
  rng.set_state(state);
}

void write_traffic(wire::Writer& out, const TrafficStats& traffic) {
  for (const ChannelTraffic& c : traffic.channels) {
    out.u64(c.messages_sent);
    out.u64(c.bytes_sent);
    out.u64(c.messages_received);
    out.u64(c.bytes_received);
  }
  out.u64(traffic.failed_contacts);
  out.u64(traffic.dropped_messages);
  out.u64(traffic.busy_rejections);
  out.u64(traffic.duplicated_messages);
  out.u64(traffic.corrupted_messages);
  out.u64(traffic.partitioned_messages);
  out.u64(traffic.delayed_messages);
  out.u64(traffic.crash_restarts);
  out.u64(traffic.rejected_messages);
}

void read_traffic(wire::Reader& in, TrafficStats& traffic) {
  for (ChannelTraffic& c : traffic.channels) {
    c.messages_sent = in.u64();
    c.bytes_sent = in.u64();
    c.messages_received = in.u64();
    c.bytes_received = in.u64();
  }
  traffic.failed_contacts = in.u64();
  traffic.dropped_messages = in.u64();
  traffic.busy_rejections = in.u64();
  traffic.duplicated_messages = in.u64();
  traffic.corrupted_messages = in.u64();
  traffic.partitioned_messages = in.u64();
  traffic.delayed_messages = in.u64();
  traffic.crash_restarts = in.u64();
  traffic.rejected_messages = in.u64();
}

void write_fault_plan(wire::Writer& out, const FaultPlan& plan) {
  out.f64(plan.drop_rate);
  out.f64(plan.duplicate_rate);
  out.f64(plan.corrupt_rate);
  out.f64(plan.delay_rate);
  out.f64(plan.max_delay);
  out.f64(plan.crash_rate);
  out.u64(plan.partition_count);
  out.u32(plan.partition_start);
  out.u32(plan.partition_heal_after);
  out.u64(plan.seed);
  out.u8(plan.warm_restart ? 1 : 0);
}

FaultPlan read_fault_plan(wire::Reader& in) {
  FaultPlan plan;
  plan.drop_rate = in.f64();
  plan.duplicate_rate = in.f64();
  plan.corrupt_rate = in.f64();
  plan.delay_rate = in.f64();
  plan.max_delay = in.f64();
  plan.crash_rate = in.f64();
  plan.partition_count = static_cast<std::size_t>(in.u64());
  plan.partition_start = in.u32();
  plan.partition_heal_after = in.u32();
  plan.seed = in.u64();
  plan.warm_restart = read_bool(in, "fault plan");
  return plan;
}

void write_string(wire::Writer& out, std::string_view text) {
  out.length(text.size());
  out.bytes(std::as_bytes(std::span(text.data(), text.size())));
}

std::string read_string(wire::Reader& in) {
  const std::size_t n = in.length(1);
  const auto view = in.bytes(n);
  return std::string(reinterpret_cast<const char*>(view.data()), n);
}

// Lower bound on an encoded node record: fixed header (8+8+4+1), traffic
// (21 u64), three rng states (41 bytes each). Used only as the allocation
// guard for the node-count prefix.
namespace {
constexpr std::size_t kMinNodeRecordBytes = 21 + 21 * 8 + 3 * 41;
}  // namespace

void write_node_table(wire::Writer& out, const NodeTable& table) {
  out.length(table.size());
  wire::Writer agent_blob;
  for (std::size_t slot = 0; slot < table.size(); ++slot) {
    const Node& node = table.by_slot(slot);
    out.u64(node.id);
    out.i64(node.attribute);
    out.u32(node.birth_round);
    out.u8(node.alive ? 1 : 0);
    write_traffic(out, node.traffic);
    write_rng(out, node.rng);
    write_rng(out, node.pick_rng);
    write_rng(out, node.fault_rng);
    if (!node.alive) continue;
    if (node.agent == nullptr) {
      throw SnapshotError("live node has no agent to snapshot");
    }
    agent_blob.clear();
    if (!node.agent->save_state(agent_blob)) {
      throw SnapshotError("agent type does not support snapshotting");
    }
    out.length(agent_blob.size());
    out.bytes(agent_blob.view());
  }
  out.length(table.live_count());
  for (NodeId id : table.live_ids()) out.u64(id);
}

void read_node_table(
    wire::Reader& in, NodeTable& table,
    const std::function<std::unique_ptr<NodeAgent>(Node&)>& make_agent) {
  table.clear();
  const std::size_t count = in.length(kMinNodeRecordBytes);
  table.reserve(count);
  bool have_prev = false;
  NodeId prev_id = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId id = in.u64();
    if (have_prev && id <= prev_id) {
      throw wire::DecodeError("node ids out of creation order in snapshot");
    }
    prev_id = id;
    have_prev = true;
    const stats::Value attribute = in.i64();
    const Round birth_round = in.u32();
    const bool alive = read_bool(in, "node record");
    Node& node = table.restore_node(id, attribute, birth_round, alive);
    read_traffic(in, node.traffic);
    read_rng(in, node.rng);
    read_rng(in, node.pick_rng);
    read_rng(in, node.fault_rng);
    if (!alive) continue;
    const std::size_t blob_size = in.length(1);
    wire::Reader blob(in.bytes(blob_size));
    node.agent = make_agent(node);
    if (node.agent == nullptr) {
      throw SnapshotError("agent factory returned null during restore");
    }
    if (!node.agent->restore_state(blob)) {
      throw wire::DecodeError("agent rejected its snapshot state blob");
    }
    blob.expect_done();
  }
  const std::size_t live = in.length(8);
  std::vector<NodeId> live_order;
  live_order.reserve(live);
  for (std::size_t i = 0; i < live; ++i) live_order.push_back(in.u64());
  const NodeId next_id =
      count == 0 ? 0 : table.by_slot(table.size() - 1).id + 1;
  try {
    table.finish_restore(live_order, next_id);
  } catch (const std::invalid_argument& error) {
    throw wire::DecodeError(std::string("snapshot live set invalid: ") +
                            error.what());
  }
}

SnapshotWriter::SnapshotWriter(EngineKind kind) {
  out_.u32(kMagic);
  out_.u32(kFormatVersion);
  out_.u32(static_cast<std::uint32_t>(kind));
}

void SnapshotWriter::begin_section(std::uint32_t tag) {
  assert(!section_open_);
  out_.u32(tag);
  open_length_offset_ = out_.size();
  out_.u32(0);  // Patched by end_section once the payload size is known.
  section_open_ = true;
}

void SnapshotWriter::end_section() {
  assert(section_open_);
  const std::size_t payload = out_.size() - open_length_offset_ - 4;
  if (payload > UINT32_MAX) {
    throw SnapshotError("snapshot section exceeds 4 GiB");
  }
  out_.patch_u32(open_length_offset_, static_cast<std::uint32_t>(payload));
  section_open_ = false;
}

std::vector<std::byte> SnapshotWriter::finish() {
  assert(!section_open_);
  out_.u64(fnv1a(out_.view()));
  return out_.take();
}

SnapshotReader::SnapshotReader(std::span<const std::byte> bytes,
                               EngineKind expected_kind) {
  constexpr std::size_t kHeaderBytes = 12;
  constexpr std::size_t kChecksumBytes = 8;
  if (bytes.size() < kHeaderBytes + kChecksumBytes) {
    throw wire::DecodeError("snapshot truncated (no room for header)");
  }
  wire::Reader header(bytes.first(kHeaderBytes));
  if (header.u32() != kMagic) {
    throw wire::DecodeError("not an adam2 snapshot (bad magic)");
  }
  version_ = header.u32();
  if (version_ != kFormatVersion) {
    throw wire::DecodeError("unsupported snapshot format version");
  }
  if (header.u32() != static_cast<std::uint32_t>(expected_kind)) {
    throw wire::DecodeError("snapshot was taken by a different engine kind");
  }
  wire::Reader trailer(bytes.last(kChecksumBytes));
  if (trailer.u64() != fnv1a(bytes.first(bytes.size() - kChecksumBytes))) {
    throw wire::DecodeError("snapshot checksum mismatch");
  }
  body_ = bytes.subspan(kHeaderBytes,
                        bytes.size() - kHeaderBytes - kChecksumBytes);
}

wire::Reader SnapshotReader::section(std::uint32_t expected_tag) {
  if (body_.size() - pos_ < 8) {
    throw wire::DecodeError("snapshot section header truncated");
  }
  wire::Reader header(body_.subspan(pos_, 8));
  if (header.u32() != expected_tag) {
    throw wire::DecodeError("unexpected snapshot section tag");
  }
  const std::uint32_t length = header.u32();
  if (length > body_.size() - pos_ - 8) {
    throw wire::DecodeError("snapshot section overruns container");
  }
  wire::Reader payload(body_.subspan(pos_ + 8, length));
  pos_ += 8 + static_cast<std::size_t>(length);
  return payload;
}

void SnapshotReader::expect_end() const {
  if (pos_ != body_.size()) {
    throw wire::DecodeError("trailing bytes after final snapshot section");
  }
}

bool write_snapshot_file(const std::filesystem::path& path,
                         std::span<const std::byte> bytes) {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  const std::filesystem::path tmp = path.string() + ".tmp";
  std::FILE* out = std::fopen(tmp.string().c_str(), "wb");
  if (out == nullptr) return false;
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), out) == bytes.size();
  ok = std::fflush(out) == 0 && ok;
#ifdef ADAM2_SNAPSHOT_HAVE_FSYNC
  // The rename below is only crash-atomic once the temp file's bytes are
  // durable; without the fsync a crash can rename an empty inode over a
  // previous good checkpoint.
  ok = ::fsync(fileno(out)) == 0 && ok;
#endif
  ok = std::fclose(out) == 0 && ok;
  if (!ok) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<std::vector<std::byte>> read_snapshot_file(
    const std::filesystem::path& path, std::string* error,
    std::size_t max_bytes) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot stat snapshot: " + ec.message();
    return std::nullopt;
  }
  if (size > max_bytes) {
    if (error != nullptr) *error = "snapshot file larger than the size cap";
    return std::nullopt;
  }
  std::FILE* in = std::fopen(path.string().c_str(), "rb");
  if (in == nullptr) {
    if (error != nullptr) *error = "cannot open snapshot file";
    return std::nullopt;
  }
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  const bool ok =
      bytes.empty() ||
      std::fread(bytes.data(), 1, bytes.size(), in) == bytes.size();
  std::fclose(in);
  if (!ok) {
    if (error != nullptr) *error = "short read on snapshot file";
    return std::nullopt;
  }
  return bytes;
}

}  // namespace adam2::host::snapshot
