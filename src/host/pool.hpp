// A persistent fork-join worker pool for the parallel cycle engine.
//
// Threads are spawned once and reused across rounds (a round has several
// short parallel phases; re-spawning threads per phase would dominate the
// runtime at small N). `run` hands every worker the same callable and blocks
// until all of them return.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adam2::host {

class WorkerPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs `task(worker_index)` on every worker; returns when all are done.
  /// Not reentrant; the calling thread does not execute the task.
  void run(const std::function<void(std::size_t)>& task);

  /// Runs `task(i)` once for every i in [0, count), claimed dynamically by
  /// the workers; returns when all indices are done. The claiming counter
  /// lives here so callers above the host layer (e.g. the sharded population
  /// evaluation in core/) need no concurrency primitives of their own.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& task);

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

 private:
  void worker_main(std::size_t index);

  std::mutex mutex_;
  std::condition_variable start_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace adam2::host
