// Traffic accounting: every encoded message a substrate transports is counted
// here, per channel and per node, which makes the paper's cost evaluation
// (§VII-I: ~800 B messages, ~40 kB sent per instance, ~120 kB per node for an
// accurate CDF) directly measurable.
#pragma once

#include <array>
#include <cstdint>

#include "host/types.hpp"

namespace adam2::host {

/// Counters for one traffic direction pair on one channel.
struct ChannelTraffic {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;

  void add_send(std::size_t bytes) noexcept {
    ++messages_sent;
    bytes_sent += bytes;
  }
  void add_receive(std::size_t bytes) noexcept {
    ++messages_received;
    bytes_received += bytes;
  }

  ChannelTraffic& operator+=(const ChannelTraffic& other) noexcept {
    messages_sent += other.messages_sent;
    bytes_sent += other.bytes_sent;
    messages_received += other.messages_received;
    bytes_received += other.bytes_received;
    return *this;
  }
};

/// Per-node (or global) traffic across all channels.
struct TrafficStats {
  std::array<ChannelTraffic, kChannelCount> channels{};
  std::uint64_t failed_contacts = 0;   ///< Gossip targets found dead.
  std::uint64_t dropped_messages = 0;  ///< Lost to injected message loss.
  std::uint64_t busy_rejections = 0;   ///< Requests refused mid-exchange
                                       ///< (async atomicity, see AsyncEngine).
  // Fault-injection and transport-reliability counters (DESIGN.md §8). The
  // simulated substrates and the real transports feed the same fields, so a
  // chaos run and a deployment run report one ledger schema.
  std::uint64_t duplicated_messages = 0;   ///< Delivered twice (injected).
  std::uint64_t corrupted_messages = 0;    ///< Payload mangled in flight.
  std::uint64_t partitioned_messages = 0;  ///< Blocked by an overlay partition.
  std::uint64_t delayed_messages = 0;      ///< Given injected extra latency.
  std::uint64_t crash_restarts = 0;        ///< Node crash-restart events.
  std::uint64_t rejected_messages = 0;     ///< Undecodable frames a transport
                                           ///< discarded (truncated datagrams,
                                           ///< invalid kind bytes).

  [[nodiscard]] ChannelTraffic& on(Channel c) noexcept {
    return channels[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const ChannelTraffic& on(Channel c) const noexcept {
    return channels[static_cast<std::size_t>(c)];
  }

  /// Total bytes sent across every channel.
  [[nodiscard]] std::uint64_t total_bytes_sent() const noexcept {
    std::uint64_t total = 0;
    for (const ChannelTraffic& c : channels) total += c.bytes_sent;
    return total;
  }

  TrafficStats& operator+=(const TrafficStats& other) noexcept {
    for (std::size_t i = 0; i < kChannelCount; ++i) {
      channels[i] += other.channels[i];
    }
    failed_contacts += other.failed_contacts;
    dropped_messages += other.dropped_messages;
    busy_rejections += other.busy_rejections;
    duplicated_messages += other.duplicated_messages;
    corrupted_messages += other.corrupted_messages;
    partitioned_messages += other.partitioned_messages;
    delayed_messages += other.delayed_messages;
    crash_restarts += other.crash_restarts;
    rejected_messages += other.rejected_messages;
    return *this;
  }
};

}  // namespace adam2::host
