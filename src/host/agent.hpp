// Protocol-side interface of every substrate.
//
// A NodeAgent is the per-node protocol instance (Adam2, EquiDepth, ...). The
// hosting substrate mediates every interaction: it asks an agent for a gossip
// request, delivers it to the chosen target's agent, and routes the response
// back — all as encoded byte buffers, exactly as a deployment would put them
// on the wire. Agents never touch each other directly, which is what lets the
// same agent code run under the serial engine, the parallel engine, the
// event-driven engine, and the threaded runtimes unchanged.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "host/overlay.hpp"
#include "host/types.hpp"
#include "host/view.hpp"
#include "rng/rng.hpp"
#include "stats/cdf.hpp"
#include "wire/buffer.hpp"

namespace adam2::host {

/// Everything an agent may see of its host node during a callback. All
/// substrates construct these, so protocol implementations are
/// transport-agnostic.
struct AgentContext {
  HostView& host;          ///< Liveness/attribute queries, traffic recording.
  Overlay& overlay;        ///< Neighbour queries (bootstrap point selection).
  NodeId self = 0;         ///< This node's id.
  Round round = 0;         ///< Current gossip round.
  Round birth_round = 0;   ///< Round the node joined the system (0 = initial).
  stats::Value attribute;  ///< The node's current attribute value.
  rng::Rng& rng;           ///< The node's private random stream.
};

/// Per-node protocol logic. All byte spans are encoded wire messages.
///
/// Buffer ownership on the exchange hot path: make_request and
/// handle_request return *views* into agent-owned scratch buffers, valid
/// until the next callback on the same agent. Substrates either consume the
/// bytes within the exchange (the cycle engines do — the two participants'
/// scratches cannot be overwritten while their exchange is in flight, even
/// under the parallel engine's scheduler, which never runs two units of one
/// node concurrently) or copy them into an owned envelope (the event-driven
/// engine and the socket runtimes, whose messages outlive the callback).
/// This keeps steady-state exchanges free of heap allocations.
class NodeAgent {
 public:
  virtual ~NodeAgent() = default;

  /// Called once per round before any exchange (TTL bookkeeping, instance
  /// creation, ...).
  virtual void on_round_start(AgentContext& /*ctx*/) {}

  /// The agent's gossip request for this round; empty means "stay silent".
  /// The view is valid until the next callback on this agent.
  [[nodiscard]] virtual std::span<const std::byte> make_request(
      AgentContext& ctx) = 0;

  /// Responder side of an exchange; the returned buffer is delivered back to
  /// the requester (empty = no response). The view is valid until the next
  /// callback on this agent.
  [[nodiscard]] virtual std::span<const std::byte> handle_request(
      AgentContext& ctx, std::span<const std::byte> request) = 0;

  /// Requester side: the response to this round's request.
  virtual void handle_response(AgentContext& /*ctx*/,
                               std::span<const std::byte> /*response*/) {}

  /// Join-time state transfer: a node entering the system sends one
  /// bootstrap request to a random neighbour and receives its response
  /// (§IV: joining nodes are bootstrapped by their initial neighbours).
  [[nodiscard]] virtual std::vector<std::byte> make_bootstrap_request(
      AgentContext& /*ctx*/) {
    return {};
  }
  [[nodiscard]] virtual std::vector<std::byte> handle_bootstrap_request(
      AgentContext& /*ctx*/, std::span<const std::byte> /*request*/) {
    return {};
  }
  /// Returns true when the response satisfied the bootstrap; false lets
  /// the substrate retry with another neighbour (e.g. the contact had
  /// nothing to share yet).
  virtual bool handle_bootstrap_response(AgentContext& /*ctx*/,
                                         std::span<const std::byte> /*response*/) {
    return true;
  }

  /// Checkpoint hooks (host::snapshot, DESIGN.md §12). save_state encodes
  /// the agent's full persistent protocol state into `out` and returns true;
  /// restore_state decodes the same encoding from a freshly-constructed
  /// agent of the same type and returns true on success. The defaults return
  /// false — "this agent type is not snapshottable" — which makes the whole
  /// engine snapshot fail loudly instead of silently dropping state.
  /// Contract: restore_state(save_state(a)) must leave the agent's
  /// observable behaviour (including wire bytes and draw sequences)
  /// bit-identical to `a`, and a second save_state must re-encode the exact
  /// same bytes (canonical form).
  [[nodiscard]] virtual bool save_state(wire::Writer& /*out*/) const {
    return false;
  }
  [[nodiscard]] virtual bool restore_state(wire::Reader& /*in*/) {
    return false;
  }
};

/// Creates the agent for a (possibly churned-in) node.
using AgentFactory =
    std::function<std::unique_ptr<NodeAgent>(const AgentContext&)>;

/// Draws the attribute value of a churned-in node.
using AttributeSource = std::function<stats::Value(rng::Rng&)>;

}  // namespace adam2::host
