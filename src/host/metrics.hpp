// Pluggable metrics interface shared by all substrates.
//
// Engine observers (std::function hooks that receive the full engine) remain
// the power-user API for experiment scripts; MetricsSink is the narrow,
// substrate-agnostic channel for dashboards and loggers that only need the
// per-round aggregates and must work against any engine.
#pragma once

#include <cstddef>

#include "host/traffic.hpp"
#include "host/types.hpp"

namespace adam2::host {

/// Aggregate state of a substrate at the end of one round (or maintenance
/// period, for event-driven substrates).
struct RoundSnapshot {
  Round round = 0;
  std::size_t live_count = 0;
  std::size_t nodes_ever = 0;
  const TrafficStats& traffic;  ///< Global totals so far.
};

class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void on_round_end(const RoundSnapshot& snapshot) = 0;
};

}  // namespace adam2::host
