// Basic identifiers shared by every agent-hosting substrate (cycle-driven
// and event-driven simulators, threaded cluster, UDP peers).
//
// The definitions live in wire/ids.hpp — the lowest layer that names nodes
// and rounds — so that core/ (below host/ in the DESIGN.md layer DAG) can
// use them without an upward include. This header re-exports them into
// adam2::host for the substrates and their consumers.
#pragma once

#include "wire/ids.hpp"

namespace adam2::host {

using wire::Channel;
using wire::channel_name;
using wire::kChannelCount;
using wire::NodeId;
using wire::Round;

}  // namespace adam2::host
