// Churn arithmetic shared by the simulation substrates (§VII-G model:
// a fixed fraction of nodes replaced per round/period).
#pragma once

#include <cmath>
#include <cstddef>

#include "rng/rng.hpp"

namespace adam2::host {

/// Converts an expected (fractional) replacement count into an integer one:
/// the floor, plus one more with probability equal to the fractional part,
/// so the long-run replacement rate matches `expected` exactly.
///
/// The result is NOT bounded by any population size: with replacement rates
/// >= 1.0, or a node table shrunk since `expected` was computed, it can
/// exceed the number of live nodes. Callers must clamp to the population
/// they can actually replace (the engines do).
[[nodiscard]] inline std::size_t stochastic_count(double expected,
                                                  rng::Rng& rng) {
  auto count = static_cast<std::size_t>(expected);
  if (rng.bernoulli(expected - std::floor(expected))) ++count;
  return count;
}

}  // namespace adam2::host
