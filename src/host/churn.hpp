// Churn arithmetic shared by the simulation substrates (§VII-G model:
// a fixed fraction of nodes replaced per round/period).
#pragma once

#include <cmath>
#include <cstddef>

#include "rng/rng.hpp"

namespace adam2::host {

/// Converts an expected (fractional) replacement count into an integer one:
/// the floor, plus one more with probability equal to the fractional part,
/// so the long-run replacement rate matches `expected` exactly.
[[nodiscard]] inline std::size_t stochastic_count(double expected,
                                                  rng::Rng& rng) {
  auto count = static_cast<std::size_t>(expected);
  if (rng.bernoulli(expected - std::floor(expected))) ++count;
  return count;
}

}  // namespace adam2::host
