#include "host/registry.hpp"

#include <cassert>
#include <stdexcept>

namespace adam2::host {

namespace {
/// Salt decorrelating the control stream's tag from the agent stream's tag
/// (both are derived from the same master seed via Rng::split).
constexpr std::uint64_t kPickStreamSalt = 0x9e3779b97f4a7c15ULL;
}  // namespace

Node& NodeTable::spawn(stats::Value attribute, Round birth_round,
                       rng::Rng& seed_rng) {
  const NodeId id = next_id_++;
  Node node;
  node.id = id;
  node.attribute = attribute;
  node.birth_round = birth_round;
  node.alive = true;
  node.rng = seed_rng.split(id);
  node.pick_rng = seed_rng.split(id ^ kPickStreamSalt);
  nodes_.push_back(std::move(node));
  index_[id] = nodes_.size() - 1;
  live_pos_[id] = live_ids_.size();
  live_ids_.push_back(id);
  return nodes_.back();
}

void NodeTable::kill(NodeId id) {
  Node& n = at(id);
  if (!n.alive) return;
  n.alive = false;
  n.agent.reset();

  auto it = live_pos_.find(id);
  assert(it != live_pos_.end());
  const std::size_t pos = it->second;
  const NodeId moved = live_ids_.back();
  live_ids_[pos] = moved;
  live_ids_.pop_back();
  live_pos_[moved] = pos;
  live_pos_.erase(id);
}

bool NodeTable::is_live(NodeId id) const {
  auto it = index_.find(id);
  return it != index_.end() && nodes_[it->second].alive;
}

Node& NodeTable::at(NodeId id) {
  auto it = index_.find(id);
  if (it == index_.end()) throw std::out_of_range("unknown node id");
  return nodes_[it->second];
}

const Node& NodeTable::at(NodeId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) throw std::out_of_range("unknown node id");
  return nodes_[it->second];
}

std::size_t NodeTable::slot_of(NodeId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) throw std::out_of_range("unknown node id");
  return it->second;
}

NodeId NodeTable::random_live(rng::Rng& rng) const {
  if (live_ids_.empty()) throw std::runtime_error("no live nodes");
  return live_ids_[rng.below(live_ids_.size())];
}

std::vector<stats::Value> NodeTable::live_attribute_values() const {
  std::vector<stats::Value> values;
  values.reserve(live_ids_.size());
  for (NodeId id : live_ids_) values.push_back(at(id).attribute);
  return values;
}

void NodeTable::record_traffic(NodeId sender, NodeId receiver, Channel channel,
                               std::size_t bytes, TrafficStats& totals) {
  auto record = [&](NodeId id, auto&& fn) {
    auto it = index_.find(id);
    if (it != index_.end()) fn(nodes_[it->second].traffic);
  };
  record(sender, [&](TrafficStats& t) { t.on(channel).add_send(bytes); });
  record(receiver, [&](TrafficStats& t) { t.on(channel).add_receive(bytes); });
  totals.on(channel).add_send(bytes);
  totals.on(channel).add_receive(bytes);
}

void NodeTable::reserve(std::size_t count) {
  nodes_.reserve(count);
  live_ids_.reserve(count);
}

void NodeTable::clear() {
  nodes_.clear();
  index_.clear();
  live_ids_.clear();
  live_pos_.clear();
  next_id_ = 0;
}

Node& NodeTable::restore_node(NodeId id, stats::Value attribute,
                              Round birth_round, bool alive) {
  if (!nodes_.empty() && id <= nodes_.back().id) {
    throw std::invalid_argument("restore_node: ids must be increasing");
  }
  Node node;
  node.id = id;
  node.attribute = attribute;
  node.birth_round = birth_round;
  node.alive = alive;
  nodes_.push_back(std::move(node));
  index_[id] = nodes_.size() - 1;
  return nodes_.back();
}

void NodeTable::finish_restore(std::span<const NodeId> live_order,
                               NodeId next_id) {
  std::size_t alive_count = 0;
  for (const Node& node : nodes_) alive_count += node.alive ? 1 : 0;
  if (live_order.size() != alive_count) {
    throw std::invalid_argument("finish_restore: live order size mismatch");
  }
  live_ids_.clear();
  live_pos_.clear();
  for (NodeId id : live_order) {
    auto it = index_.find(id);
    if (it == index_.end() || !nodes_[it->second].alive) {
      throw std::invalid_argument("finish_restore: dead or unknown live id");
    }
    if (!live_pos_.emplace(id, live_ids_.size()).second) {
      throw std::invalid_argument("finish_restore: duplicate live id");
    }
    live_ids_.push_back(id);
  }
  if (!nodes_.empty() && next_id <= nodes_.back().id) {
    throw std::invalid_argument("finish_restore: next id not past last node");
  }
  next_id_ = next_id;
}

}  // namespace adam2::host
