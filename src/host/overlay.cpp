#include "host/overlay.hpp"

namespace adam2::host {

void Overlay::build_initial(std::span<const NodeId> ids, const HostView& host,
                            rng::Rng& rng) {
  for (NodeId id : ids) add_node(id, host, rng);
}

void Overlay::maintain(HostView& /*host*/, rng::Rng& /*rng*/) {}

}  // namespace adam2::host
