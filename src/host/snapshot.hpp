// host::snapshot — the versioned binary checkpoint codec (DESIGN.md §12).
//
// A snapshot captures the *complete* deterministic state of an engine —
// every node record with its three RNG stream positions, every agent's
// protocol state (through the NodeAgent save/restore hooks), the overlay,
// the global stream, traffic ledgers and the scheduler state — such that
// restore + run-to-round-R is bit-identical to the uninterrupted run. The
// golden-resume fixtures in tests/golden_replay_test.cpp pin this for the
// serial, sharded and event-driven engines, with and without fault plans.
//
// Framing follows src/wire conventions exactly (little-endian fixed-width
// integers, IEEE-754 doubles, u32 length prefixes with allocation guards):
//
//   u32 magic 'A''2''S''N'   | u32 format version | u32 engine kind
//   sections: { u32 tag | u32 byte length | payload } ...
//   u64 FNV-1a checksum over everything before it
//
// Decoding is reject-don't-crash: every malformed input — wrong magic,
// unsupported version, engine-kind mismatch, checksum failure, truncation,
// oversized lengths, non-canonical flags — raises wire::DecodeError with a
// diagnostic and leaves the engine untouched (engines restore into scratch
// state and swap only after the full parse succeeds). The 10k-seeded-mutant
// corpus in tests/snapshot_test.cpp enforces "rejected or canonical, never
// UB".
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "host/fault.hpp"
#include "host/registry.hpp"
#include "host/traffic.hpp"
#include "rng/rng.hpp"
#include "wire/buffer.hpp"

namespace adam2::host::snapshot {

/// 'A' '2' 'S' 'N' as little-endian bytes on disk.
inline constexpr std::uint32_t kMagic = 0x4e533241U;
inline constexpr std::uint32_t kFormatVersion = 1;

/// Thrown on the *encode* side only (e.g. an agent type without snapshot
/// support). Decode-side rejection is always wire::DecodeError.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// Discriminates the engine family a snapshot belongs to. The serial and
/// sharded cycle engines share one layout (their persistent state is
/// identical — the shards are per-round scratch); the event-driven engine
/// adds its queue. Restoring into the wrong family is rejected.
enum class EngineKind : std::uint32_t {
  kCycle = 1,
  kAsync = 2,
};

// Section tags, in on-disk order.
inline constexpr std::uint32_t kSectionMeta = 1;     ///< Config echo + labels.
inline constexpr std::uint32_t kSectionEngine = 2;   ///< Scheduler state.
inline constexpr std::uint32_t kSectionNodes = 3;    ///< Node table + agents.
inline constexpr std::uint32_t kSectionOverlay = 4;  ///< Overlay state blob.
inline constexpr std::uint32_t kSectionQueue = 5;    ///< Async event queue.

/// FNV-1a over `bytes` (the project's digest primitive, same constants as
/// the golden replay fixtures).
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept;

// -- Field helpers (shared by every engine's save/restore) -------------------

void write_rng(wire::Writer& out, const rng::Rng& rng);
/// Throws wire::DecodeError on a non-canonical cached-normal flag.
void read_rng(wire::Reader& in, rng::Rng& rng);

void write_traffic(wire::Writer& out, const TrafficStats& traffic);
void read_traffic(wire::Reader& in, TrafficStats& traffic);

void write_fault_plan(wire::Writer& out, const FaultPlan& plan);
[[nodiscard]] FaultPlan read_fault_plan(wire::Reader& in);

void write_string(wire::Writer& out, std::string_view text);
[[nodiscard]] std::string read_string(wire::Reader& in);

/// Writes the kSectionNodes payload for `table` into an open section:
/// every node record in creation order (id, attribute, birth round, alive
/// flag, traffic, all three stream states, and — for live nodes — the
/// agent's state blob via NodeAgent::save_state), then the id counter and
/// the explicit live-id order (history-dependent, cannot be re-derived).
/// Throws SnapshotError when a live agent does not support snapshotting.
void write_node_table(wire::Writer& out, const NodeTable& table);

/// Restores the kSectionNodes payload into `table` (cleared first).
/// `make_agent` constructs the replacement agent for a live node *after* the
/// node's record and streams are installed; the codec then feeds it the
/// saved state blob via NodeAgent::restore_state. Throws wire::DecodeError
/// on any malformed input.
void read_node_table(
    wire::Reader& in, NodeTable& table,
    const std::function<std::unique_ptr<NodeAgent>(Node&)>& make_agent);

// -- Container framing -------------------------------------------------------

/// Builds one snapshot: header, then tagged sections, then the trailing
/// checksum. Sections must be written in tag order and cannot nest.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(EngineKind kind);

  /// The underlying encoder; write section payloads through this between
  /// begin_section / end_section.
  [[nodiscard]] wire::Writer& out() { return out_; }

  void begin_section(std::uint32_t tag);
  void end_section();

  /// Appends the checksum and returns the finished snapshot bytes. The
  /// writer is spent afterwards.
  [[nodiscard]] std::vector<std::byte> finish();

 private:
  wire::Writer out_;
  std::size_t open_length_offset_ = 0;
  bool section_open_ = false;
};

/// Validates the container (magic, version, engine kind, checksum) upfront,
/// then hands out one bounds-checked wire::Reader per section, in order.
class SnapshotReader {
 public:
  /// Throws wire::DecodeError with a diagnostic on any container-level
  /// problem.
  SnapshotReader(std::span<const std::byte> bytes, EngineKind expected_kind);

  [[nodiscard]] std::uint32_t version() const { return version_; }

  /// Opens the next section; its tag must equal `expected_tag`. The
  /// returned reader covers exactly the section payload — callers finish
  /// with expect_done() so trailing garbage inside a section is rejected.
  [[nodiscard]] wire::Reader section(std::uint32_t expected_tag);

  /// Throws unless every section was consumed.
  void expect_end() const;

 private:
  std::span<const std::byte> body_;  ///< The sections region.
  std::size_t pos_ = 0;
  std::uint32_t version_ = 0;
};

// -- File I/O ----------------------------------------------------------------

/// Atomically lands `bytes` at `path`: temp file in the same directory,
/// flush, fsync, rename — an interrupted save never leaves a truncated or
/// partial snapshot behind (same discipline as the obs exporters). Returns
/// false on any failure, leaving no partial target.
bool write_snapshot_file(const std::filesystem::path& path,
                         std::span<const std::byte> bytes);

/// Reads a snapshot file whole. Returns nullopt (and fills `*error` when
/// given) if the file cannot be read or is larger than `max_bytes`.
[[nodiscard]] std::optional<std::vector<std::byte>> read_snapshot_file(
    const std::filesystem::path& path, std::string* error = nullptr,
    std::size_t max_bytes = std::size_t{1} << 32);

}  // namespace adam2::host::snapshot
