// NodeTable: the node registry shared by every hosting substrate.
//
// Owns the node records and maintains the id -> slot index, the dense
// live-id vector (O(1) removal via swap-with-back) and the monotonically
// increasing id counter. Substrates layer their own scheduling (rounds,
// events, threads) on top; the bookkeeping that used to be duplicated across
// Engine / AsyncEngine / Cluster lives here exactly once.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "host/node.hpp"
#include "host/traffic.hpp"
#include "host/types.hpp"
#include "rng/rng.hpp"
#include "stats/cdf.hpp"

namespace adam2::host {

class NodeTable {
 public:
  /// Creates a live node with a fresh id and both per-node random streams
  /// derived from `seed_rng` (which is advanced). The agent is NOT attached —
  /// the caller builds a context and attaches one. The reference stays valid
  /// until the next spawn.
  Node& spawn(stats::Value attribute, Round birth_round, rng::Rng& seed_rng);

  /// Marks `id` dead, destroys its agent (state dies with the node — its
  /// mass is lost, §VII-G) and removes it from the live set. The caller is
  /// responsible for overlay removal and any substrate-local cleanup.
  /// No-op when the node is already dead.
  void kill(NodeId id);

  [[nodiscard]] bool is_live(NodeId id) const;
  [[nodiscard]] bool contains(NodeId id) const { return index_.count(id) != 0; }

  /// Node lookup by id; throws std::out_of_range for unknown ids.
  [[nodiscard]] Node& at(NodeId id);
  [[nodiscard]] const Node& at(NodeId id) const;

  /// Node lookup by creation slot (0 .. size()-1), including dead nodes.
  [[nodiscard]] Node& by_slot(std::size_t slot) { return nodes_[slot]; }
  [[nodiscard]] const Node& by_slot(std::size_t slot) const {
    return nodes_[slot];
  }
  /// Creation slot of `id`; throws std::out_of_range for unknown ids.
  [[nodiscard]] std::size_t slot_of(NodeId id) const;

  [[nodiscard]] std::span<const NodeId> live_ids() const { return live_ids_; }
  [[nodiscard]] std::size_t live_count() const { return live_ids_.size(); }
  /// Count of all nodes ever created (live + departed).
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// A uniformly random live node id; throws std::runtime_error when empty.
  [[nodiscard]] NodeId random_live(rng::Rng& rng) const;

  [[nodiscard]] stats::Value attribute_of(NodeId id) const {
    return at(id).attribute;
  }
  void set_attribute(NodeId id, stats::Value value) { at(id).attribute = value; }

  /// Attribute values of all live nodes (the ground truth population).
  [[nodiscard]] std::vector<stats::Value> live_attribute_values() const;

  /// Records one message on the per-node counters of both endpoints (ids
  /// unknown to the table are skipped) and on `totals`.
  void record_traffic(NodeId sender, NodeId receiver, Channel channel,
                      std::size_t bytes, TrafficStats& totals);

  void reserve(std::size_t count);

  // -- Checkpoint restore primitives (host::snapshot, DESIGN.md §12) --------

  /// Drops every node record and resets the table to its freshly-constructed
  /// state (restore targets a clean table).
  void clear();

  /// Re-creates one node record during a restore, in creation order. Ids
  /// must be strictly increasing across calls (creation order is the
  /// snapshot's on-disk order). The node's rng streams and agent are left
  /// default — the snapshot reader installs them afterwards — and live-set
  /// membership is NOT established here; finish_restore() installs the
  /// recorded live order. Throws std::invalid_argument on out-of-order ids.
  Node& restore_node(NodeId id, stats::Value attribute, Round birth_round,
                     bool alive);

  /// Installs the live-id order (history-dependent: kill() swaps with the
  /// back, so it cannot be derived from the records) and the id counter.
  /// Every entry must name a distinct node marked alive by restore_node, and
  /// every alive node must appear; throws std::invalid_argument otherwise.
  void finish_restore(std::span<const NodeId> live_order, NodeId next_id);

 private:
  std::vector<Node> nodes_;                        // Indexed by creation order.
  std::unordered_map<NodeId, std::size_t> index_;  // id -> nodes_ slot.
  std::vector<NodeId> live_ids_;
  std::unordered_map<NodeId, std::size_t> live_pos_;  // id -> live_ids_ slot.
  NodeId next_id_ = 0;
};

}  // namespace adam2::host
