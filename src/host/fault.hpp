// Deterministic fault injection shared by every execution substrate.
//
// A FaultPlan declares *what* can go wrong (rates and bounds); a
// FaultInjector turns the plan into per-message and per-node decisions drawn
// from dedicated fault streams, derived statelessly from the plan seed and
// the node id. Three properties matter (DESIGN.md §8):
//
//  * replayable — the same plan against the same node ids produces the same
//    fault schedule, on any substrate, in any process;
//  * parallel-safe — a node's fault stream is consumed only inside that
//    node's exchange unit (cycle engines) or on that node's thread
//    (runtimes), never shared, so the sharded ParallelEngine stays
//    bit-identical to the serial Engine with faults enabled;
//  * invisible when disabled — the default (all-zero) plan consumes nothing
//    from any stream and takes no branch with a side effect, so fault-aware
//    engines replay bit-identically to the pre-fault engines.
//
// The taxonomy: message drop, duplication, payload corruption (truncation or
// byte flips — the wire validation walk must reject these, never crash),
// bounded extra delay (event-driven substrates, where it causes reordering),
// node crash-restart with state loss, and overlay partitions that heal after
// a configured number of cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "host/types.hpp"
#include "rng/rng.hpp"

namespace adam2::host {

/// Declarative fault schedule. All rates are per-message (or per-node-round
/// for crashes) probabilities in [0, 1]; everything defaults to "no faults".
struct FaultPlan {
  double drop_rate = 0.0;       ///< P(message silently lost).
  double duplicate_rate = 0.0;  ///< P(message delivered twice).
  double corrupt_rate = 0.0;    ///< P(payload truncated or byte-flipped).
  double delay_rate = 0.0;      ///< P(delivery delayed) — event-driven only.
  double max_delay = 0.0;       ///< Extra delay bound, seconds (uniform).
  double crash_rate = 0.0;      ///< P(node crash-restart) per node per round.
  /// Number of disjoint overlay partitions (0 or 1 = no partition). Nodes
  /// are assigned to partitions by a stateless hash of the plan seed, and
  /// aggregation messages crossing a partition boundary are blocked.
  std::size_t partition_count = 0;
  Round partition_start = 0;  ///< First round the partition is active.
  /// Rounds until the partition heals (0 = never heals).
  Round partition_heal_after = 0;
  /// Fault-stream seed, deliberately independent of the engine seed so the
  /// same simulation can be replayed under different fault schedules.
  std::uint64_t seed = 0xfa171;
  /// When true, a crash-restarted node rejoins *warm*: its protocol state is
  /// checkpointed through the NodeAgent save/restore hooks (host::snapshot)
  /// and handed to the replacement agent, instead of the default cold
  /// restart that loses all instance state. Pure behaviour switch — it
  /// consumes no draws from any stream, so the crash schedule itself is
  /// identical warm or cold.
  bool warm_restart = false;

  /// True when any fault can ever fire.
  [[nodiscard]] bool enabled() const noexcept {
    return message_faults() || crash_rate > 0.0 || partition_count > 1;
  }

  /// True when any per-message fault can fire (drop/corrupt/duplicate/delay).
  [[nodiscard]] bool message_faults() const noexcept {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || corrupt_rate > 0.0 ||
           (delay_rate > 0.0 && max_delay > 0.0);
  }
};

/// Outcome of one message leg. Exactly one fate per leg: drop wins over
/// corruption wins over duplication (a dropped message cannot also arrive
/// twice).
enum class MessageFate : std::uint8_t {
  kDeliver = 0,
  kDrop = 1,
  kCorrupt = 2,
  kDuplicate = 3,
};

class FaultInjector {
 public:
  FaultInjector() = default;  ///< Disabled: every query answers "no fault".
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] bool enabled() const noexcept { return plan_.enabled(); }

  /// Derives node `id`'s dedicated fault stream. Stateless — computed from
  /// (plan seed, id) only, never drawn from an engine stream, so seeding it
  /// at spawn time cannot perturb any existing random sequence.
  [[nodiscard]] rng::Rng node_stream(NodeId id) const noexcept;

  /// Draws the fate of one message leg from `stream`. Consumes exactly
  /// three draws when any message fault is enabled and zero otherwise, so
  /// the draw count never depends on the outcome.
  [[nodiscard]] MessageFate message_fate(rng::Rng& stream) const noexcept;

  /// Extra delivery delay in seconds (0.0 = not delayed). Consumes one draw
  /// when delay faults are enabled, plus one more when the message is
  /// actually delayed.
  [[nodiscard]] double extra_delay(rng::Rng& stream) const noexcept;

  /// Whether the node owning `stream` crash-restarts this round. Consumes
  /// one draw when crash faults are enabled, zero otherwise.
  [[nodiscard]] bool crashes(rng::Rng& stream) const noexcept;

  /// Returns a mangled copy of `bytes`: truncated at a random offset or with
  /// 1–4 random bytes flipped (never a byte-identical copy unless empty).
  /// The receiver's wire validation walk must reject or cleanly survive the
  /// result — fuzz-backed by the chaos suite.
  [[nodiscard]] std::vector<std::byte> corrupt(std::span<const std::byte> bytes,
                                               rng::Rng& stream) const;

  /// Whether the partition is active at `round`.
  [[nodiscard]] bool partition_active(Round round) const noexcept;

  /// Partition index of node `id` (stable for the plan's lifetime). Pure
  /// function of (plan seed, id): no RNG state is consumed, so partition
  /// checks are schedule-independent.
  [[nodiscard]] std::size_t partition_of(NodeId id) const noexcept;

  /// True when a message between `a` and `b` is blocked at `round`.
  [[nodiscard]] bool partitioned(NodeId a, NodeId b, Round round) const noexcept;

 private:
  FaultPlan plan_{};
};

}  // namespace adam2::host
