// The ONE translation unit that decides message fates. Engines schedule and
// deliver; everything that can go wrong to a message in flight is resolved
// here (see exchange.hpp and DESIGN.md §9).
#include "host/exchange.hpp"

namespace adam2::host {

Conduit::Delivery Conduit::resolve(const Leg& leg,
                                   std::span<const std::byte> payload,
                                   std::vector<std::byte>& scratch,
                                   TrafficStats& counters) const {
  Delivery delivery;
  delivery.payload = payload;

  // Stage order (and therefore draw order) is exactly what the engines
  // always did: legacy loss from the control stream, then the stateless
  // partition check, then the fault-plan draws from the fault stream.
  if (message_loss_ > 0.0 && leg.loss_stream != nullptr &&
      leg.loss_stream->bernoulli(message_loss_)) {
    ++counters.dropped_messages;
    delivery.drop_cause = DropCause::kLoss;
    return delivery;  // copies == 0: lost.
  }
  if (leg.partition_check && faults_.enabled() &&
      faults_.partitioned(leg.from, leg.to, leg.round)) {
    ++counters.partitioned_messages;
    delivery.drop_cause = DropCause::kPartition;
    return delivery;
  }
  const MessageFate fate = leg.fault_stream != nullptr
                               ? faults_.message_fate(*leg.fault_stream)
                               : MessageFate::kDeliver;
  if (fate == MessageFate::kDrop) {
    ++counters.dropped_messages;
    delivery.drop_cause = DropCause::kFault;
    return delivery;
  }

  delivery.copies = 1;
  switch (fate) {
    case MessageFate::kCorrupt:
      scratch = faults_.corrupt(payload, *leg.fault_stream);
      delivery.payload = scratch;
      delivery.corrupted = true;
      ++counters.corrupted_messages;
      break;
    case MessageFate::kDuplicate:
      delivery.copies = 2;
      ++counters.duplicated_messages;
      break;
    case MessageFate::kDeliver:
    case MessageFate::kDrop:
      break;
  }

  // Injected extra delay: drawn last, only for event-driven substrates.
  if (leg.draw_delay && leg.fault_stream != nullptr) {
    delivery.extra_delay = faults_.extra_delay(*leg.fault_stream);
    if (delivery.extra_delay > 0.0) ++counters.delayed_messages;
  }
  return delivery;
}

void Conduit::run_cycle_exchange(HostView& host, Overlay& overlay,
                                 NodeTable& table, Round round,
                                 Node& initiator,
                                 const std::optional<NodeId>& target,
                                 TrafficStats& counters,
                                 obs::ExchangeOutcome* outcome) const {
  // Outcome reporting is fully guarded: a null `outcome` leaves the hot path
  // untouched (zero-alloc acceptance), a non-null one records how far the
  // exchange got at every early return below.
  if (outcome != nullptr) {
    *outcome = obs::ExchangeOutcome{};
    outcome->initiator = initiator.id;
    if (target) {
      outcome->target = *target;
      outcome->has_target = true;
    }
  }
  AgentContext ictx = make_context(host, overlay, initiator, round);
  auto request = initiator.agent->make_request(ictx);
  if (request.empty()) return;  // Outcome already kSilent.

  if (!target || !table.is_live(*target) || *target == initiator.id) {
    ++initiator.traffic.failed_contacts;
    ++counters.failed_contacts;
    if (outcome != nullptr) {
      outcome->status = obs::ExchangeStatus::kFailedContact;
      outcome->request_bytes = static_cast<std::uint32_t>(request.size());
    }
    return;
  }

  host.record_traffic(initiator.id, *target, Channel::kAggregation,
                      request.size());
  // All draws come from the initiator's streams (loss legs from its control
  // stream, faults from its fault stream), so the unit is self-contained and
  // the sharded engine replays bit-identically to the serial one. The
  // partition check applies to the request leg only: a blocked request means
  // no response ever exists.
  std::vector<std::byte> request_scratch;
  const Delivery request_delivery =
      resolve(Leg{initiator.id, *target, round, &initiator.pick_rng,
                  &initiator.fault_rng, /*partition_check=*/true,
                  /*draw_delay=*/false},
              request, request_scratch, counters);
  if (outcome != nullptr) {
    outcome->request_bytes = static_cast<std::uint32_t>(request.size());
    outcome->request_copies =
        static_cast<std::uint8_t>(request_delivery.copies);
    outcome->request_corrupted = request_delivery.corrupted;
    outcome->status = request_delivery.drop_cause == DropCause::kPartition
                          ? obs::ExchangeStatus::kRequestPartitioned
                          : obs::ExchangeStatus::kRequestLost;
  }
  if (request_delivery.copies == 0) return;

  Node& responder = table.at(*target);
  AgentContext rctx = make_context(host, overlay, responder, round);
  // The payload aliases the initiator's scratch (or the corruption scratch):
  // valid across every delivery because nothing calls back into the
  // initiator's agent until the response. A duplicated (retransmitted)
  // request is processed once per copy, and only the reply to the LAST copy
  // travels back — the earlier reply span is invalidated by the later
  // handle_request call anyway.
  std::span<const std::byte> response;
  for (unsigned copy = 0; copy < request_delivery.copies; ++copy) {
    response = responder.agent->handle_request(rctx, request_delivery.payload);
  }
  if (outcome != nullptr) outcome->status = obs::ExchangeStatus::kNoResponse;
  if (response.empty()) return;

  host.record_traffic(responder.id, initiator.id, Channel::kAggregation,
                      response.size());
  std::vector<std::byte> response_scratch;
  const Delivery response_delivery =
      resolve(Leg{responder.id, initiator.id, round, &initiator.pick_rng,
                  &initiator.fault_rng, /*partition_check=*/false,
                  /*draw_delay=*/false},
              response, response_scratch, counters);
  if (outcome != nullptr) {
    outcome->response_bytes = static_cast<std::uint32_t>(response.size());
    outcome->response_copies =
        static_cast<std::uint8_t>(response_delivery.copies);
    outcome->response_corrupted = response_delivery.corrupted;
    outcome->status = response_delivery.copies == 0
                          ? obs::ExchangeStatus::kResponseLost
                          : obs::ExchangeStatus::kCompleted;
  }
  // The response aliases the responder's scratch: valid across both
  // handle_response calls because nothing calls the responder in between.
  for (unsigned copy = 0; copy < response_delivery.copies; ++copy) {
    initiator.agent->handle_response(ictx, response_delivery.payload);
  }
}

SessionedPort::Initiate SessionedPort::initiate(
    NodeAgent& agent, AgentContext& ctx,
    const std::function<std::optional<NodeId>()>& pick_target,
    ExchangeSession::Clock::duration timeout) {
  if (session_.busy()) return Initiate::kLocked;  // Exchange atomicity.
  session_.abandon();  // Any previous lock has expired unanswered.

  auto request = agent.make_request(ctx);
  if (request.empty()) return Initiate::kSilent;
  const auto target = pick_target();
  if (!target) return Initiate::kNoTarget;
  transport_.record_gossip_sent(*target, request.size());
  const std::uint64_t token = session_.next_token();
  if (!send_copies(/*is_request=*/true, *target, token, request)) {
    return Initiate::kSendFailed;
  }
  session_.arm(token, timeout);
  return Initiate::kSent;
}

bool SessionedPort::on_request(NodeAgent& agent, AgentContext& ctx,
                               NodeId from, std::uint64_t token,
                               std::span<const std::byte> payload) {
  if (session_.busy()) {
    // Atomicity: our state could still change when our own outstanding
    // response arrives, so we must not commit to an answer now — but NACK
    // so the requester frees its own lock immediately instead of waiting
    // out its response timeout.
    ++counters_.busy_rejections;
    transport_.send_busy(from, token);
    return false;
  }
  transport_.record_gossip_received(from, payload.size());
  auto response = agent.handle_request(ctx, payload);
  if (response.empty()) return true;
  transport_.record_gossip_sent(from, response.size());
  send_copies(/*is_request=*/false, from, token, response);
  return true;
}

bool SessionedPort::on_response(NodeAgent& agent, AgentContext& ctx,
                                NodeId from, std::uint64_t token,
                                std::span<const std::byte> payload) {
  if (!session_.close_if_current(token)) {
    // Stale: we already gave up on that exchange. Merging it now would
    // violate atomicity (our state moved on meanwhile).
    ++counters_.dropped_messages;
    return false;
  }
  transport_.record_gossip_received(from, payload.size());
  agent.handle_response(ctx, payload);
  return true;
}

bool SessionedPort::send_copies(bool is_request, NodeId to,
                                std::uint64_t token,
                                std::span<const std::byte> payload) {
  // Wall-clock runtimes have no legacy loss knob, no simulated partitions
  // and no injected delay (real latency supplies itself): only the
  // fault-plan draws apply.
  std::vector<std::byte> scratch;
  const Conduit::Delivery delivery = conduit_.resolve(
      Conduit::Leg{/*from=*/0, to, /*round=*/0, /*loss_stream=*/nullptr,
                   &fault_stream_, /*partition_check=*/false,
                   /*draw_delay=*/false},
      payload, scratch, counters_);
  if (delivery.copies == 0) {
    return true;  // The sender cannot tell a dropped message from a sent one.
  }
  bool sent = false;
  for (unsigned copy = 0; copy < delivery.copies; ++copy) {
    sent = is_request
               ? transport_.send_request(to, token, delivery.payload)
               : transport_.send_response(to, token, delivery.payload);
  }
  return sent;
}

}  // namespace adam2::host
