#include "host/pool.hpp"

#include <algorithm>
#include <atomic>

namespace adam2::host {

WorkerPool::WorkerPool(std::size_t workers) {
  workers = std::max<std::size_t>(workers, 1);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(const std::function<void(std::size_t)>& task) {
  std::unique_lock lock(mutex_);
  task_ = &task;
  running_ = threads_.size();
  ++generation_;
  start_.notify_all();
  done_.wait(lock, [this] { return running_ == 0; });
  task_ = nullptr;
}

void WorkerPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& task) {
  std::atomic<std::size_t> next{0};
  run([&](std::size_t /*worker*/) {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
      task(i);
    }
  });
}

void WorkerPool::worker_main(std::size_t index) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(std::size_t)>* task = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = task_;
    }
    (*task)(index);
    {
      std::lock_guard lock(mutex_);
      if (--running_ == 0) done_.notify_all();
    }
  }
}

}  // namespace adam2::host
