#include "host/bootstrap.hpp"

namespace adam2::host {

void bootstrap_joiner(Node& joiner, NodeTable& table, Overlay& overlay,
                      HostView& host, Round round, TrafficStats& totals,
                      const BootstrapPolicy& policy) {
  AgentContext ctx = make_context(host, overlay, joiner, round);
  auto request = joiner.agent->make_bootstrap_request(ctx);
  if (request.empty()) return;

  for (int attempt = 0; attempt < policy.attempts; ++attempt) {
    const auto target = overlay.pick_gossip_target(joiner.id, joiner.pick_rng);
    if (!target || !table.is_live(*target)) {
      ++joiner.traffic.failed_contacts;
      ++totals.failed_contacts;
      continue;
    }
    host.record_traffic(joiner.id, *target, Channel::kBootstrap,
                        request.size());
    Node& neighbour = table.at(*target);
    AgentContext nctx = make_context(host, overlay, neighbour, round);
    auto response = neighbour.agent->handle_bootstrap_request(nctx, request);
    if (response.empty()) continue;
    host.record_traffic(*target, joiner.id, Channel::kBootstrap,
                        response.size());
    if (joiner.agent->handle_bootstrap_response(ctx, response)) break;
  }
}

}  // namespace adam2::host
