// The per-node record every substrate keeps, plus the context builder.
#pragma once

#include <memory>

#include "host/agent.hpp"
#include "host/traffic.hpp"
#include "host/types.hpp"
#include "rng/rng.hpp"
#include "stats/cdf.hpp"

namespace adam2::host {

/// One hosted node. Each node carries two decorrelated random streams derived
/// from the master seed at spawn time:
///
///  * `rng`      — the agent stream, consumed only inside agent callbacks
///                 (restart coin flips, threshold sampling, ...);
///  * `pick_rng` — the control stream, consumed only by the hosting engine
///                 (gossip target picks, message-loss draws, bootstrap
///                 contact picks).
///
/// Fault-injecting engines add a third stream, `fault_rng`, seeded
/// *statelessly* from the fault-plan seed and the node id (never drawn from
/// an engine stream), consumed only for fault decisions about messages this
/// node initiates plus its own crash draws. A disabled plan never touches
/// it, so fault-aware engines replay bit-identically to fault-free ones.
///
/// Keeping the two apart is what makes parallel execution bit-identical to
/// serial execution: an engine can pre-draw every control decision in a plan
/// phase without perturbing any agent's stream, and each stream is advanced
/// by exactly one node regardless of how exchanges are scheduled across
/// threads.
struct Node {
  NodeId id = 0;
  stats::Value attribute = 0;
  Round birth_round = 0;
  bool alive = false;
  TrafficStats traffic;
  rng::Rng rng{0};        ///< Agent stream.
  rng::Rng pick_rng{0};   ///< Engine control stream.
  rng::Rng fault_rng{0};  ///< Fault-injection stream (host::FaultInjector).
  std::unique_ptr<NodeAgent> agent;
};

/// Builds the callback context for `node` at `round`.
[[nodiscard]] inline AgentContext make_context(HostView& host, Overlay& overlay,
                                               Node& node, Round round) {
  return AgentContext{host,   overlay,        node.id,  round,
                      node.birth_round, node.attribute, node.rng};
}

}  // namespace adam2::host
