// The transport-agnostic exchange fabric shared by every execution substrate
// (DESIGN.md §9).
//
// Every engine used to re-implement the same per-message pipeline — legacy
// loss draw, partition check, fault-fate draw, corruption mangling, duplicate
// delivery, traffic counters — five times, with five chances to diverge. The
// fabric centralises it:
//
//  * `Conduit` owns per-leg fate resolution. `resolve()` is the ONLY place
//    in the codebase that switches on `MessageFate`: it folds the legacy
//    `message_loss` knob and the fault plan's `drop_rate` into one pipeline
//    while drawing from exactly the streams (and in exactly the order) the
//    engines always used, so golden replay stays bit-identical. Engines
//    receive back a `Delivery` — how many copies to hand over, pointing at
//    which bytes, after how much extra delay — and do scheduling only.
//  * `Conduit::run_cycle_exchange()` is the full in-round request→response
//    state machine of the cycle engines (serial and sharded), including the
//    "reply to the second copy wins" duplicate rule. Payload spans alias
//    agent scratch end to end: the steady-state exchange allocates nothing
//    (bench/micro_core pins this).
//  * `SessionedPort` is the request→response state machine of the wall-clock
//    runtimes: busy lock, NACK, token matching, stale-response rejection,
//    faulty multi-copy sends — parameterised by a `Transport` adapter that
//    knows only how to move an envelope and record gossip bytes. Adding a
//    transport (e.g. TCP) means implementing that adapter, nothing else.
//
// `ExchangeSession` (below) is the raw atomicity lock `SessionedPort` builds
// on; the event-driven simulator keeps its own virtual-time busy set but
// shares `Conduit` for everything per-message.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "host/agent.hpp"
#include "host/fault.hpp"
#include "host/node.hpp"
#include "host/overlay.hpp"
#include "host/registry.hpp"
#include "host/traffic.hpp"
#include "host/types.hpp"
#include "host/view.hpp"
#include "obs/events.hpp"
#include "rng/rng.hpp"

namespace adam2::host {

class ExchangeSession {
 public:
  using Clock = std::chrono::steady_clock;

  /// True while a request is outstanding and its deadline has not passed —
  /// the node must not initiate or answer exchanges (atomicity lock).
  [[nodiscard]] bool busy() const {
    return awaiting_ && Clock::now() < deadline_;
  }

  /// Fresh token to stamp on an outgoing request. Consuming a token does not
  /// open the session — callers `arm` only once the send succeeded.
  [[nodiscard]] std::uint64_t next_token() { return ++last_token_; }

  /// Locks the session: a request with `token` is in flight, answered or
  /// abandoned by `timeout` from now.
  void arm(std::uint64_t token, Clock::duration timeout) {
    awaiting_ = true;
    token_ = token;
    deadline_ = Clock::now() + timeout;
  }

  /// Delivers a response (or busy-NACK) token. True when it matches the open
  /// exchange — the session unlocks and the caller may merge the payload.
  /// False means stale: the exchange was already abandoned, so merging would
  /// violate atomicity. A matching response is accepted even after the
  /// deadline as long as no new exchange was opened meanwhile.
  [[nodiscard]] bool close_if_current(std::uint64_t token) {
    if (!awaiting_ || token != token_) return false;
    awaiting_ = false;
    return true;
  }

  /// Drops any expired lock (called from the tick path once `busy()` is
  /// false: the exchange timed out and nothing was merged).
  void abandon() { awaiting_ = false; }

 private:
  bool awaiting_ = false;
  std::uint64_t token_ = 0;
  std::uint64_t last_token_ = 0;
  Clock::time_point deadline_{};
};

/// The per-message delivery pipeline: legacy loss, partitions, and the fault
/// plan, resolved in one place for every substrate.
class Conduit {
 public:
  Conduit() = default;  ///< No loss, no faults: every leg delivers one copy.
  explicit Conduit(const FaultPlan& plan, double message_loss = 0.0)
      : faults_(plan), message_loss_(message_loss) {}

  [[nodiscard]] const FaultInjector& faults() const noexcept { return faults_; }
  [[nodiscard]] double message_loss() const noexcept { return message_loss_; }

  /// One direction of one message: who is sending to whom, at which round,
  /// and from which random streams the pipeline may draw. Null streams skip
  /// the corresponding stage (e.g. the runtimes have no legacy loss knob, so
  /// they pass no loss stream).
  struct Leg {
    NodeId from = 0;
    NodeId to = 0;
    Round round = 0;
    /// Stream for the legacy `message_loss` draw (the engines' control
    /// stream). The draw happens exactly when `message_loss > 0` and a
    /// stream is supplied — same condition, same stream, same position as
    /// the pre-fabric engines.
    rng::Rng* loss_stream = nullptr;
    /// Stream for the fault-plan draws (fate, corruption bytes, delay).
    rng::Rng* fault_stream = nullptr;
    /// Whether this leg can be blocked by an overlay partition (stateless
    /// check, consumes no draws). The cycle engines check the request leg
    /// only; the event-driven engine checks both.
    bool partition_check = false;
    /// Whether to draw injected extra delay (event-driven substrates only).
    bool draw_delay = false;
  };

  /// Why a leg delivered zero copies (observability: the trace distinguishes
  /// a partition-blocked request from a fault-dropped one).
  enum class DropCause : std::uint8_t {
    kNone = 0,    ///< Delivered (copies > 0).
    kLoss,        ///< Legacy message_loss draw.
    kPartition,   ///< Blocked by an overlay partition.
    kFault,       ///< Fault-plan drop fate.
  };

  /// What the transport must now do with the message.
  struct Delivery {
    /// 0 = the message never arrives (lost / dropped / partitioned);
    /// 1 = deliver once; 2 = deliver twice (duplication fault).
    unsigned copies = 0;
    /// The bytes to deliver — the caller's payload, or `scratch` when the
    /// leg was corrupted. Valid as long as both stay alive and unmodified.
    std::span<const std::byte> payload;
    /// Injected extra delay in seconds (only when `leg.draw_delay`). Both
    /// copies of a duplicated message share it; transports add their own
    /// per-copy latency on top.
    double extra_delay = 0.0;
    /// Cause when copies == 0; kNone otherwise.
    DropCause drop_cause = DropCause::kNone;
    /// True when the payload was rebound to the corruption scratch.
    bool corrupted = false;
  };

  /// Resolves the fate of one leg: draws loss → partition → fate → mangling
  /// → delay in the engines' historical stream order, bumps the matching
  /// `counters`, and rebinds the payload to `scratch` when corrupted.
  /// Allocates only on corruption — the steady-state path is allocation-free.
  Delivery resolve(const Leg& leg, std::span<const std::byte> payload,
                   std::vector<std::byte>& scratch,
                   TrafficStats& counters) const;

  /// The cycle engines' whole exchange: make_request, failed-contact
  /// accounting, both legs through `resolve`, duplicate-copy delivery with
  /// the "reply to the second copy wins" rule, and traffic recording through
  /// `host` (so sharded engines can reroute totals per worker). Draws only
  /// from the initiator's control/agent/fault streams and touches only the
  /// two participants plus `counters` — the unit stays parallel-safe.
  /// When `outcome` is non-null it is filled with how far the exchange got
  /// (obs trace support); the null path is the exact pre-obs instruction
  /// stream, so detached runs stay bit-identical and allocation-free.
  void run_cycle_exchange(HostView& host, Overlay& overlay, NodeTable& table,
                          Round round, Node& initiator,
                          const std::optional<NodeId>& target,
                          TrafficStats& counters,
                          obs::ExchangeOutcome* outcome = nullptr) const;

 private:
  FaultInjector faults_;
  double message_loss_ = 0.0;
};

/// The wall-clock runtimes' request→response state machine, shared by the
/// threaded Cluster and the UDP peers. Owns the busy lock, token discipline,
/// NACKs, stale-response rejection and faulty multi-copy sends; a `Transport`
/// adapter supplies the envelope moves and gossip-byte recording.
///
/// Driven from the owning node's (single) thread; not itself thread-safe.
class SessionedPort {
 public:
  /// What a transport must provide. Send methods return false only when the
  /// destination is unroutable — a fault-dropped message still looks sent
  /// (the sender waits out its timeout exactly as in a deployment).
  class Transport {
   public:
    virtual ~Transport() = default;
    virtual bool send_request(NodeId to, std::uint64_t token,
                              std::span<const std::byte> payload) = 0;
    virtual bool send_response(NodeId to, std::uint64_t token,
                               std::span<const std::byte> payload) = 0;
    virtual void send_busy(NodeId to, std::uint64_t token) = 0;
    /// Gossip-byte accounting hooks (per-node counters or a shared ledger —
    /// the port does not care which).
    virtual void record_gossip_sent(NodeId peer, std::size_t bytes) = 0;
    virtual void record_gossip_received(NodeId peer, std::size_t bytes) = 0;
  };

  /// `conduit`, `transport`, `fault_stream` and `counters` must outlive the
  /// port (they live in the owning node).
  SessionedPort(const Conduit& conduit, Transport& transport,
                rng::Rng& fault_stream, TrafficStats& counters)
      : conduit_(conduit),
        transport_(transport),
        fault_stream_(fault_stream),
        counters_(counters) {}

  enum class Initiate : std::uint8_t {
    kLocked,      ///< An exchange is still in flight; nothing happened.
    kSilent,      ///< The agent had nothing to send.
    kNoTarget,    ///< No usable gossip target.
    kSendFailed,  ///< The transport could not route the request.
    kSent,        ///< Request away; session armed until `timeout`.
  };

  /// One tick-path initiation attempt: busy check, expired-lock reclaim,
  /// make_request, target pick, send (through the fault pipeline), arm.
  Initiate initiate(NodeAgent& agent, AgentContext& ctx,
                    const std::function<std::optional<NodeId>()>& pick_target,
                    ExchangeSession::Clock::duration timeout);

  /// Handles an incoming gossip request. While locked the port NACKs (so the
  /// requester frees its own lock immediately) and returns false; otherwise
  /// the agent answers and the response goes back through the fault
  /// pipeline.
  bool on_request(NodeAgent& agent, AgentContext& ctx, NodeId from,
                  std::uint64_t token, std::span<const std::byte> payload);

  /// Handles an incoming gossip response. False when stale (the exchange was
  /// already abandoned — merging would violate atomicity; counted as a
  /// dropped message). Duplicated responses merge once: the first copy
  /// closes the session, the second is stale by construction.
  bool on_response(NodeAgent& agent, AgentContext& ctx, NodeId from,
                   std::uint64_t token, std::span<const std::byte> payload);

  /// Handles a busy-NACK: unlocks if it answers the open exchange.
  void on_busy(std::uint64_t token) { (void)session_.close_if_current(token); }

  [[nodiscard]] ExchangeSession& session() { return session_; }

 private:
  /// Sends `copies` of a payload as resolved by the conduit. True when the
  /// sender believes the send succeeded (including fault-dropped messages).
  bool send_copies(bool is_request, NodeId to, std::uint64_t token,
                   std::span<const std::byte> payload);

  const Conduit& conduit_;
  Transport& transport_;
  rng::Rng& fault_stream_;
  TrafficStats& counters_;
  ExchangeSession session_;
};

}  // namespace adam2::host
