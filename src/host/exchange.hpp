// Exchange-atomicity session state shared by the wall-clock runtimes.
//
// With real message latency, a node's state could change between sending a
// request and receiving the matching response, which would permanently
// create or destroy averaging mass (the well-known atomicity requirement of
// push-pull gossip). A node with an exchange in flight is therefore *busy*:
// it initiates nothing and refuses incoming requests (NACKing so the
// requester frees its own lock) until its response arrives or a
// worst-case-RTT deadline passes. Responses are matched by token so a stale
// response — one for an exchange the node already gave up on — is never
// merged. Cluster::RuntimeNode and UdpPeer both drive this object from
// their own (single) node thread; it is not itself thread-safe.
#pragma once

#include <chrono>
#include <cstdint>

namespace adam2::host {

class ExchangeSession {
 public:
  using Clock = std::chrono::steady_clock;

  /// True while a request is outstanding and its deadline has not passed —
  /// the node must not initiate or answer exchanges (atomicity lock).
  [[nodiscard]] bool busy() const {
    return awaiting_ && Clock::now() < deadline_;
  }

  /// Fresh token to stamp on an outgoing request. Consuming a token does not
  /// open the session — callers `arm` only once the send succeeded.
  [[nodiscard]] std::uint64_t next_token() { return ++last_token_; }

  /// Locks the session: a request with `token` is in flight, answered or
  /// abandoned by `timeout` from now.
  void arm(std::uint64_t token, Clock::duration timeout) {
    awaiting_ = true;
    token_ = token;
    deadline_ = Clock::now() + timeout;
  }

  /// Delivers a response (or busy-NACK) token. True when it matches the open
  /// exchange — the session unlocks and the caller may merge the payload.
  /// False means stale: the exchange was already abandoned, so merging would
  /// violate atomicity. A matching response is accepted even after the
  /// deadline as long as no new exchange was opened meanwhile.
  [[nodiscard]] bool close_if_current(std::uint64_t token) {
    if (!awaiting_ || token != token_) return false;
    awaiting_ = false;
    return true;
  }

  /// Drops any expired lock (called from the tick path once `busy()` is
  /// false: the exchange timed out and nothing was merged).
  void abandon() { awaiting_ = false; }

 private:
  bool awaiting_ = false;
  std::uint64_t token_ = 0;
  std::uint64_t last_token_ = 0;
  Clock::time_point deadline_{};
};

}  // namespace adam2::host
