#include "runtime/cluster.hpp"

#include <cassert>
#include <future>
#include <mutex>
#include <stdexcept>

#include "host/exchange.hpp"
#include "host/ledger.hpp"
#include "sim/overlay.hpp"

namespace adam2::runtime {

using Clock = std::chrono::steady_clock;

/// HostView bridge the agents see. Membership is static, so liveness and
/// attribute lookups are lock-free reads; traffic totals go through the
/// shared ledger (low contention: two short updates per exchange).
class Cluster::HostBridge final : public sim::HostView {
 public:
  HostBridge(const std::vector<stats::Value>& attributes,
             const std::vector<sim::NodeId>& ids)
      : attributes_(attributes), ids_(ids) {}

  [[nodiscard]] bool is_live(sim::NodeId id) const override {
    return id < attributes_.size();
  }
  [[nodiscard]] stats::Value attribute_of(sim::NodeId id) const override {
    return attributes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] sim::Round round() const override {
    return 0;  // Wall-clock runtime has no global round; agents use ctx.round.
  }
  [[nodiscard]] std::span<const sim::NodeId> live_ids() const override {
    return ids_;
  }
  void record_traffic(sim::NodeId /*sender*/, sim::NodeId /*receiver*/,
                      sim::Channel channel, std::size_t bytes) override {
    ledger_.record_message(channel, bytes);
  }

  [[nodiscard]] sim::TrafficStats snapshot() const {
    return ledger_.snapshot();
  }

 private:
  const std::vector<stats::Value>& attributes_;
  const std::vector<sim::NodeId>& ids_;
  host::SharedTrafficLedger ledger_;
};

/// One node: an agent, a mailbox, and the thread driving both.
class Cluster::RuntimeNode {
 public:
  RuntimeNode(Cluster& cluster, sim::NodeId id, stats::Value attribute,
              rng::Rng rng)
      : cluster_(cluster),
        id_(id),
        attribute_(attribute),
        rng_(rng),
        fault_rng_(cluster.faults_.node_stream(id)) {}

  void create_agent(const sim::AgentFactory& factory) {
    sim::AgentContext ctx = make_context();
    agent_ = factory(ctx);
    if (!agent_) throw std::runtime_error("agent factory returned null");
  }

  void start() {
    thread_ = std::thread([this] { run(); });
  }

  void request_stop() {
    stop_.store(true, std::memory_order_relaxed);
    mailbox_.close();
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  Mailbox& mailbox() { return mailbox_; }

  void post(Cluster::NodeTask task) {
    {
      const std::lock_guard<std::mutex> lock(tasks_mutex_);
      tasks_.push_back(std::move(task));
    }
    // Wake the loop: an empty self-addressed envelope is cheapest.
    mailbox_.push(Envelope{EnvelopeKind::kWakeup, id_, 0, {}});
  }

  /// Runs the task inline; only valid when the thread is not running
  /// (before start / after join).
  void run_inline(const Cluster::NodeTask& task) {
    sim::AgentContext ctx = make_context();
    task(*agent_, ctx);
  }

  [[nodiscard]] const sim::TrafficStats& traffic() const { return traffic_; }

 private:
  sim::AgentContext make_context() {
    return sim::AgentContext{*cluster_.host_, *cluster_.overlay_,
                             id_,            local_round_,
                             0,              attribute_,
                             rng_};
  }

  Clock::duration jittered_period() {
    const double jitter = cluster_.config_.period_jitter;
    const double factor = rng_.uniform(1.0 - jitter, 1.0 + jitter);
    return std::chrono::duration_cast<Clock::duration>(
        cluster_.config_.gossip_period * factor);
  }

  void run() {
    Clock::time_point next_tick = Clock::now() + jittered_period();
    while (!stop_.load(std::memory_order_relaxed)) {
      drain_tasks();
      auto envelope = mailbox_.wait_pop(next_tick);
      if (stop_.load(std::memory_order_relaxed)) break;
      if (envelope) {
        handle(std::move(*envelope));
        continue;
      }
      if (Clock::now() >= next_tick) {
        tick();
        next_tick += jittered_period();
      }
    }
    drain_tasks();
  }

  void drain_tasks() {
    for (;;) {
      Cluster::NodeTask task;
      {
        const std::lock_guard<std::mutex> lock(tasks_mutex_);
        if (tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      sim::AgentContext ctx = make_context();
      task(*agent_, ctx);
    }
  }

  void tick() {
    ++local_round_;
    sim::AgentContext ctx = make_context();
    agent_->on_round_start(ctx);

    if (session_.busy()) return;  // Exchange atomicity.
    session_.abandon();           // Any previous lock has expired unanswered.

    auto request = agent_->make_request(ctx);
    if (request.empty()) return;
    const auto target = cluster_.overlay_->pick_gossip_target(id_, rng_);
    if (!target || *target == id_) {
      ++traffic_.failed_contacts;
      return;
    }
    traffic_.on(sim::Channel::kAggregation).add_send(request.size());
    const std::uint64_t token = session_.next_token();
    if (send_faulty(*target, EnvelopeKind::kGossipRequest, token, request)) {
      session_.arm(token, cluster_.config_.response_timeout);
    } else {
      ++traffic_.failed_contacts;
    }
  }

  /// Sends one gossip message through the fault plan. Returns whether the
  /// sender believes the send succeeded: a fault-dropped message still looks
  /// sent (the sender waits out its timeout exactly as in a deployment);
  /// only an unroutable destination reports failure. All fault draws come
  /// from this node's own fault stream, so schedules replay per node.
  bool send_faulty(sim::NodeId to, EnvelopeKind kind, std::uint64_t token,
                   std::span<const std::byte> payload) {
    const host::FaultInjector& faults = cluster_.faults_;
    const host::MessageFate fate = faults.message_fate(fault_rng_);
    if (fate == host::MessageFate::kDrop) {
      ++traffic_.dropped_messages;
      return true;
    }
    // The span aliases the agent's scratch; the envelope outlives the
    // callback, so copy (or corrupt) into an owned payload.
    std::vector<std::byte> bytes;
    if (fate == host::MessageFate::kCorrupt) {
      bytes = faults.corrupt(payload, fault_rng_);
      ++traffic_.corrupted_messages;
    } else {
      bytes.assign(payload.begin(), payload.end());
    }
    if (fate == host::MessageFate::kDuplicate) {
      ++traffic_.duplicated_messages;
      cluster_.network_.send(to, Envelope{kind, id_, token, bytes});
    }
    return cluster_.network_.send(to,
                                  Envelope{kind, id_, token, std::move(bytes)});
  }

  void handle(Envelope&& envelope) {
    sim::AgentContext ctx = make_context();
    switch (envelope.kind) {
      case EnvelopeKind::kGossipRequest: {
        if (session_.busy()) {
          // Atomicity: no reply while locked — but NACK so the requester
          // frees its own lock immediately instead of waiting out the
          // response timeout.
          ++traffic_.busy_rejections;
          cluster_.network_.send(envelope.from,
                                 Envelope{EnvelopeKind::kGossipBusy, id_,
                                          envelope.token, {}});
          return;
        }
        traffic_.on(sim::Channel::kAggregation)
            .add_receive(envelope.payload.size());
        auto response = agent_->handle_request(ctx, envelope.payload);
        if (response.empty()) return;
        traffic_.on(sim::Channel::kAggregation).add_send(response.size());
        send_faulty(envelope.from, EnvelopeKind::kGossipResponse,
                    envelope.token, response);
        return;
      }
      case EnvelopeKind::kGossipResponse:
        if (!session_.close_if_current(envelope.token)) {
          // Stale: we already gave up on that exchange. Merging it now
          // would violate atomicity (our state moved on meanwhile).
          ++traffic_.dropped_messages;
          return;
        }
        traffic_.on(sim::Channel::kAggregation)
            .add_receive(envelope.payload.size());
        agent_->handle_response(ctx, envelope.payload);
        return;
      case EnvelopeKind::kBootstrapRequest: {
        auto response = agent_->handle_bootstrap_request(ctx, envelope.payload);
        if (response.empty()) return;
        cluster_.network_.send(
            envelope.from, Envelope{EnvelopeKind::kBootstrapResponse, id_,
                                    envelope.token, std::move(response)});
        return;
      }
      case EnvelopeKind::kBootstrapResponse:
        (void)agent_->handle_bootstrap_response(ctx, envelope.payload);
        return;
      case EnvelopeKind::kGossipBusy:
        // Exchange abandoned; nothing was merged.
        (void)session_.close_if_current(envelope.token);
        return;
      case EnvelopeKind::kWakeup:
        return;  // drain_tasks at the top of the loop does the work.
    }
  }

  Cluster& cluster_;
  const sim::NodeId id_;
  const stats::Value attribute_;
  rng::Rng rng_;
  rng::Rng fault_rng_;
  std::unique_ptr<sim::NodeAgent> agent_;
  Mailbox mailbox_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  sim::Round local_round_ = 0;
  host::ExchangeSession session_;
  sim::TrafficStats traffic_;
  std::mutex tasks_mutex_;
  std::deque<Cluster::NodeTask> tasks_;
};

Cluster::Cluster(ClusterConfig config, std::vector<stats::Value> attributes,
                 sim::AgentFactory agent_factory)
    : config_(config),
      faults_(config.faults),
      attributes_(std::move(attributes)) {
  if (attributes_.empty()) throw std::invalid_argument("empty cluster");
  if (!agent_factory) throw std::invalid_argument("cluster requires a factory");

  ids_.resize(attributes_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    ids_[i] = static_cast<sim::NodeId>(i);
  }
  host_ = std::make_unique<HostBridge>(attributes_, ids_);

  rng::Rng rng(config_.seed);
  overlay_ = std::make_unique<sim::StaticRandomOverlay>(config_.overlay_degree);
  overlay_->build_initial(ids_, *host_, rng);

  nodes_.reserve(ids_.size());
  for (sim::NodeId id : ids_) {
    nodes_.push_back(std::make_unique<RuntimeNode>(
        *this, id, attributes_[static_cast<std::size_t>(id)], rng.split(id)));
    network_.attach(id, &nodes_.back()->mailbox());
  }
  // Agents are created after every mailbox is attached, in case a factory
  // wants to send something immediately.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->create_agent(agent_factory);
  }
}

Cluster::~Cluster() { stop(); }

void Cluster::start() {
  if (running_.exchange(true)) return;
  for (auto& node : nodes_) node->start();
}

void Cluster::stop() {
  if (!running_.exchange(false)) return;
  for (auto& node : nodes_) node->request_stop();
  for (auto& node : nodes_) node->join();
}

void Cluster::run_on_node(sim::NodeId id, NodeTask fn) {
  auto& node = *nodes_.at(static_cast<std::size_t>(id));
  if (!running_) {
    node.run_inline(fn);
    return;
  }
  std::promise<void> done;
  auto future = done.get_future();
  node.post([&fn, &done](sim::NodeAgent& agent, sim::AgentContext& ctx) {
    fn(agent, ctx);
    done.set_value();
  });
  future.wait();
}

sim::TrafficStats Cluster::total_traffic() const {
  sim::TrafficStats total = host_->snapshot();
  for (const auto& node : nodes_) total += node->traffic();
  return total;
}

}  // namespace adam2::runtime
