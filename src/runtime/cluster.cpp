#include "runtime/cluster.hpp"

#include <cassert>
#include <future>
#include <mutex>
#include <stdexcept>

#include "host/exchange.hpp"
#include "host/ledger.hpp"
#include "sim/overlay.hpp"
#include "wire/buffer.hpp"

namespace adam2::runtime {

using Clock = std::chrono::steady_clock;

/// HostView bridge the agents see. Membership is static, so liveness and
/// attribute lookups are lock-free reads; traffic totals go through the
/// shared ledger (low contention: two short updates per exchange).
class Cluster::HostBridge final : public host::HostView {
 public:
  HostBridge(const std::vector<stats::Value>& attributes,
             const std::vector<host::NodeId>& ids)
      : attributes_(attributes), ids_(ids) {}

  [[nodiscard]] bool is_live(host::NodeId id) const override {
    return id < attributes_.size();
  }
  [[nodiscard]] stats::Value attribute_of(host::NodeId id) const override {
    return attributes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] host::Round round() const override {
    return 0;  // Wall-clock runtime has no global round; agents use ctx.round.
  }
  [[nodiscard]] std::span<const host::NodeId> live_ids() const override {
    return ids_;
  }
  void record_traffic(host::NodeId /*sender*/, host::NodeId /*receiver*/,
                      host::Channel channel, std::size_t bytes) override {
    ledger_.record_message(channel, bytes);
  }

  [[nodiscard]] host::TrafficStats snapshot() const {
    return ledger_.snapshot();
  }

 private:
  const std::vector<stats::Value>& attributes_;
  const std::vector<host::NodeId>& ids_;
  host::SharedTrafficLedger ledger_;
};

/// One node: an agent, a mailbox, and the thread driving both. The
/// request→response state machine (busy lock, NACK, stale-token rejection,
/// faulty sends) lives in the shared host::SessionedPort; this class is the
/// port's Transport adapter over the in-process Network plus the thread and
/// task plumbing.
class Cluster::RuntimeNode final : private host::SessionedPort::Transport {
 public:
  // The stream arrives by rvalue reference: this is an ownership transfer of
  // a freshly split stream, and rng::Rng is never passed by value anywhere
  // (a silent copy would fork the stream and diverge replay — adam2_lint
  // rule `rng-copy`).
  RuntimeNode(Cluster& cluster, host::NodeId id, stats::Value attribute,
              rng::Rng&& rng)
      : cluster_(cluster),
        id_(id),
        attribute_(attribute),
        rng_(rng),
        fault_rng_(cluster.conduit_.faults().node_stream(id)),
        port_(cluster.conduit_, *this, fault_rng_, traffic_) {}

  void create_agent(const host::AgentFactory& factory) {
    host::AgentContext ctx = make_context();
    agent_ = factory(ctx);
    if (!agent_) throw std::runtime_error("agent factory returned null");
  }

  /// Crash-restart, executed on this node's own thread (from a posted task)
  /// or inline while the cluster is stopped. Warm restarts carry the agent's
  /// protocol state through the host::snapshot hooks; cold restarts lose it.
  /// The session lock is abandoned either way (the in-flight exchange died
  /// with the process) but the port and its token counter survive, so the
  /// first post-restart initiation stamps a fresh token and any straggler
  /// response to the pre-crash exchange is rejected as stale, not merged.
  void restart(const host::AgentFactory& factory, bool warm) {
    wire::Writer blob;
    const bool carry = warm && agent_->save_state(blob);
    host::AgentContext ctx = make_context();
    auto fresh = factory(ctx);
    if (!fresh) throw std::runtime_error("agent factory returned null");
    if (carry) {
      wire::Reader in(blob.view());
      if (!fresh->restore_state(in)) {
        // The blob was produced by save_state moments ago; rejection means
        // the agent's save/restore pair is asymmetric — a bug, not bad input.
        throw std::runtime_error(
            "warm restart: agent rejected its own state blob");
      }
      in.expect_done();
    }
    agent_ = std::move(fresh);
    port_.session().abandon();
    ++traffic_.crash_restarts;
  }

  void start() {
    thread_ = std::thread([this] { run(); });
  }

  void request_stop() {
    stop_.store(true, std::memory_order_relaxed);
    mailbox_.close();
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  Mailbox& mailbox() { return mailbox_; }

  void post(Cluster::NodeTask task) {
    {
      const std::lock_guard<std::mutex> lock(tasks_mutex_);
      tasks_.push_back(std::move(task));
    }
    // Wake the loop: an empty self-addressed envelope is cheapest.
    mailbox_.push(Envelope{EnvelopeKind::kWakeup, id_, 0, {}});
  }

  /// Runs the task inline; only valid when the thread is not running
  /// (before start / after join).
  void run_inline(const Cluster::NodeTask& task) {
    host::AgentContext ctx = make_context();
    task(*agent_, ctx);
  }

  [[nodiscard]] const host::TrafficStats& traffic() const { return traffic_; }

 private:
  host::AgentContext make_context() {
    return host::AgentContext{*cluster_.host_, *cluster_.overlay_,
                             id_,            local_round_,
                             0,              attribute_,
                             rng_};
  }

  Clock::duration jittered_period() {
    const double jitter = cluster_.config_.period_jitter;
    const double factor = rng_.uniform(1.0 - jitter, 1.0 + jitter);
    return std::chrono::duration_cast<Clock::duration>(
        cluster_.config_.gossip_period * factor);
  }

  void run() {
    Clock::time_point next_tick = Clock::now() + jittered_period();
    while (!stop_.load(std::memory_order_relaxed)) {
      drain_tasks();
      auto envelope = mailbox_.wait_pop(next_tick);
      if (stop_.load(std::memory_order_relaxed)) break;
      if (envelope) {
        handle(std::move(*envelope));
        continue;
      }
      if (Clock::now() >= next_tick) {
        tick();
        next_tick += jittered_period();
      }
    }
    drain_tasks();
  }

  void drain_tasks() {
    for (;;) {
      Cluster::NodeTask task;
      {
        const std::lock_guard<std::mutex> lock(tasks_mutex_);
        if (tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      host::AgentContext ctx = make_context();
      task(*agent_, ctx);
    }
  }

  void tick() {
    ++local_round_;
    host::AgentContext ctx = make_context();
    agent_->on_round_start(ctx);

    const auto outcome = port_.initiate(
        *agent_, ctx,
        [this]() -> std::optional<host::NodeId> {
          const auto target = cluster_.overlay_->pick_gossip_target(id_, rng_);
          if (!target || *target == id_) return std::nullopt;
          return target;
        },
        cluster_.config_.response_timeout);
    if (outcome == host::SessionedPort::Initiate::kNoTarget ||
        outcome == host::SessionedPort::Initiate::kSendFailed) {
      ++traffic_.failed_contacts;
    }
  }

  // -- host::SessionedPort::Transport (in-process Network adapter) ---------
  bool send_request(host::NodeId to, std::uint64_t token,
                    std::span<const std::byte> payload) override {
    return send_envelope(to, EnvelopeKind::kGossipRequest, token, payload);
  }
  bool send_response(host::NodeId to, std::uint64_t token,
                     std::span<const std::byte> payload) override {
    return send_envelope(to, EnvelopeKind::kGossipResponse, token, payload);
  }
  void send_busy(host::NodeId to, std::uint64_t token) override {
    cluster_.network_.send(to,
                           Envelope{EnvelopeKind::kGossipBusy, id_, token, {}});
  }
  void record_gossip_sent(host::NodeId /*peer*/, std::size_t bytes) override {
    traffic_.on(host::Channel::kAggregation).add_send(bytes);
  }
  void record_gossip_received(host::NodeId /*peer*/,
                              std::size_t bytes) override {
    traffic_.on(host::Channel::kAggregation).add_receive(bytes);
  }

  bool send_envelope(host::NodeId to, EnvelopeKind kind, std::uint64_t token,
                     std::span<const std::byte> payload) {
    // The span aliases the agent's (or the conduit's corruption) scratch;
    // the envelope outlives the callback, so copy into an owned payload.
    return cluster_.network_.send(
        to, Envelope{kind, id_, token,
                     std::vector<std::byte>(payload.begin(), payload.end())});
  }

  void handle(Envelope&& envelope) {
    host::AgentContext ctx = make_context();
    switch (envelope.kind) {
      case EnvelopeKind::kGossipRequest:
        port_.on_request(*agent_, ctx, envelope.from, envelope.token,
                         envelope.payload);
        return;
      case EnvelopeKind::kGossipResponse:
        port_.on_response(*agent_, ctx, envelope.from, envelope.token,
                          envelope.payload);
        return;
      case EnvelopeKind::kBootstrapRequest: {
        auto response = agent_->handle_bootstrap_request(ctx, envelope.payload);
        if (response.empty()) return;
        cluster_.network_.send(
            envelope.from, Envelope{EnvelopeKind::kBootstrapResponse, id_,
                                    envelope.token, std::move(response)});
        return;
      }
      case EnvelopeKind::kBootstrapResponse:
        (void)agent_->handle_bootstrap_response(ctx, envelope.payload);
        return;
      case EnvelopeKind::kGossipBusy:
        // Exchange abandoned; nothing was merged.
        port_.on_busy(envelope.token);
        return;
      case EnvelopeKind::kWakeup:
        return;  // drain_tasks at the top of the loop does the work.
    }
  }

  Cluster& cluster_;
  const host::NodeId id_;
  const stats::Value attribute_;
  rng::Rng rng_;
  rng::Rng fault_rng_;
  std::unique_ptr<host::NodeAgent> agent_;
  Mailbox mailbox_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  host::Round local_round_ = 0;
  host::TrafficStats traffic_;
  /// Declared after fault_rng_ and traffic_ (it holds references to both).
  host::SessionedPort port_;
  std::mutex tasks_mutex_;
  std::deque<Cluster::NodeTask> tasks_;
};

Cluster::Cluster(ClusterConfig config, std::vector<stats::Value> attributes,
                 host::AgentFactory agent_factory)
    : config_(config),
      conduit_(config.faults),
      attributes_(std::move(attributes)),
      agent_factory_(std::move(agent_factory)) {
  if (attributes_.empty()) throw std::invalid_argument("empty cluster");
  if (!agent_factory_) {
    throw std::invalid_argument("cluster requires a factory");
  }

  ids_.resize(attributes_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    ids_[i] = static_cast<host::NodeId>(i);
  }
  host_ = std::make_unique<HostBridge>(attributes_, ids_);

  rng::Rng rng(config_.seed);
  overlay_ = std::make_unique<sim::StaticRandomOverlay>(config_.overlay_degree);
  overlay_->build_initial(ids_, *host_, rng);

  nodes_.reserve(ids_.size());
  for (host::NodeId id : ids_) {
    nodes_.push_back(std::make_unique<RuntimeNode>(
        *this, id, attributes_[static_cast<std::size_t>(id)], rng.split(id)));
    network_.attach(id, &nodes_.back()->mailbox());
  }
  // Agents are created after every mailbox is attached, in case a factory
  // wants to send something immediately.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->create_agent(agent_factory_);
  }
}

Cluster::~Cluster() { stop(); }

void Cluster::start() {
  if (running_.exchange(true)) return;
  // Recorder access stays on the driver thread (Recorder is not
  // thread-safe); round 0 because wall-clock runtimes have no round counter.
  if (recorder_ != nullptr) {
    recorder_->engine_start("cluster", 0, nodes_.size());
  }
  for (auto& node : nodes_) node->start();
}

void Cluster::stop() {
  if (!running_.exchange(false)) return;
  for (auto& node : nodes_) node->request_stop();
  for (auto& node : nodes_) node->join();
  // Threads have joined: the counters are exact now, so absorb the final
  // snapshot into the metrics registry.
  if (recorder_ != nullptr) {
    recorder_->set_traffic(total_traffic());
    recorder_->engine_stop(0);
  }
}

void Cluster::run_on_node(host::NodeId id, NodeTask fn) {
  auto& node = *nodes_.at(static_cast<std::size_t>(id));
  if (!running_) {
    node.run_inline(fn);
    return;
  }
  std::promise<void> done;
  auto future = done.get_future();
  node.post([&fn, &done](host::NodeAgent& agent, host::AgentContext& ctx) {
    fn(agent, ctx);
    done.set_value();
  });
  future.wait();
}

void Cluster::restart_node(host::NodeId id) {
  auto& node = *nodes_.at(static_cast<std::size_t>(id));
  const bool warm = config_.faults.warm_restart;
  if (!running_) {
    node.restart(agent_factory_, warm);
  } else {
    std::promise<void> done;
    auto future = done.get_future();
    // The task's agent reference points at the old agent and must not be
    // touched after restart replaces it; the restart runs on the node's own
    // thread, the only place the agent may be swapped safely.
    node.post([&](host::NodeAgent& /*agent*/, host::AgentContext& /*ctx*/) {
      node.restart(agent_factory_, warm);
      done.set_value();
    });
    future.wait();
  }
  // Recorder access stays on the driver thread (round 0: no global rounds).
  if (recorder_ != nullptr) recorder_->crash_restart(0, id);
}

host::TrafficStats Cluster::total_traffic() const {
  host::TrafficStats total = host_->snapshot();
  for (const auto& node : nodes_) total += node->traffic();
  return total;
}

}  // namespace adam2::runtime
