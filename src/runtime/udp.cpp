#include "runtime/udp.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cassert>
#include <cstring>
#include <future>
#include <stdexcept>

namespace adam2::runtime {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kHeaderBytes = 1 + 8 + 8;  // kind + from + token
constexpr std::size_t kMaxDatagram = 64 * 1024;

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

UdpEndpoint::UdpEndpoint() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr = loopback(0);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd_);
    throw std::runtime_error("bind() failed");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    throw std::runtime_error("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
}

UdpEndpoint::~UdpEndpoint() { shutdown(); }

void UdpEndpoint::shutdown() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

bool UdpEndpoint::send(std::uint16_t to_port, const Envelope& envelope) {
  if (fd_ < 0) return false;
  std::vector<std::byte> frame(kHeaderBytes + envelope.payload.size());
  frame[0] = static_cast<std::byte>(envelope.kind);
  std::memcpy(frame.data() + 1, &envelope.from, 8);
  std::memcpy(frame.data() + 9, &envelope.token, 8);
  if (!envelope.payload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, envelope.payload.data(),
                envelope.payload.size());
  }
  const sockaddr_in addr = loopback(to_port);
  const auto sent =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  return sent == static_cast<ssize_t>(frame.size());
}

std::optional<Envelope> UdpEndpoint::receive(
    std::chrono::microseconds timeout) {
  if (fd_ < 0) return std::nullopt;
  // A zero timeval means "block forever" to SO_RCVTIMEO. A caller's
  // sub-microsecond wait truncates to exactly that, which would wedge the
  // peer's receive loop (and its stop/join) until a stray datagram arrives.
  if (timeout <= std::chrono::microseconds::zero()) {
    timeout = std::chrono::microseconds{1};
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(timeout.count() % 1'000'000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    return std::nullopt;
  }
  std::byte buffer[kMaxDatagram];
  const auto received = ::recv(fd_, buffer, sizeof buffer, 0);
  if (received < 0) return std::nullopt;  // Timeout or socket closure.
  if (received < static_cast<ssize_t>(kHeaderBytes)) {
    // A datagram arrived but is too short to even frame an envelope: that is
    // wire truncation, not silence, and must show in the ledger.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const auto kind = static_cast<std::uint8_t>(buffer[0]);
  if (kind < static_cast<std::uint8_t>(EnvelopeKind::kGossipRequest) ||
      kind > static_cast<std::uint8_t>(EnvelopeKind::kGossipBusy)) {
    // Corrupted kind byte: the envelope cannot be dispatched safely.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  Envelope envelope;
  envelope.kind = static_cast<EnvelopeKind>(kind);
  std::memcpy(&envelope.from, buffer + 1, 8);
  std::memcpy(&envelope.token, buffer + 9, 8);
  envelope.payload.assign(buffer + kHeaderBytes, buffer + received);
  return envelope;
}

UdpDirectory::UdpDirectory(std::vector<stats::Value> attributes,
                           std::vector<std::uint16_t> ports)
    : attributes_(std::move(attributes)), ports_(std::move(ports)) {
  assert(attributes_.size() == ports_.size());
  ids_.resize(attributes_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    ids_[i] = static_cast<sim::NodeId>(i);
  }
}

std::optional<sim::NodeId> UdpDirectory::pick_gossip_target(
    sim::NodeId id, rng::Rng& rng) const {
  if (ids_.size() < 2) return std::nullopt;
  for (;;) {
    const sim::NodeId candidate = ids_[rng.below(ids_.size())];
    if (candidate != id) return candidate;
  }
}

std::vector<sim::NodeId> UdpDirectory::neighbors(sim::NodeId id) const {
  std::vector<sim::NodeId> out;
  out.reserve(ids_.size() - 1);
  for (sim::NodeId other : ids_) {
    if (other != id) out.push_back(other);
  }
  return out;
}

std::vector<stats::Value> UdpDirectory::known_attribute_values(
    sim::NodeId id, const sim::HostView& /*host*/) const {
  std::vector<stats::Value> values;
  values.reserve(attributes_.size() - 1);
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (static_cast<sim::NodeId>(i) != id) values.push_back(attributes_[i]);
  }
  return values;
}

void UdpDirectory::record_traffic(sim::NodeId, sim::NodeId,
                                  sim::Channel channel, std::size_t bytes) {
  ledger_.record_message(channel, bytes);
}

sim::TrafficStats UdpDirectory::traffic() const { return ledger_.snapshot(); }

UdpPeer::UdpPeer(UdpPeerConfig config, sim::NodeId id, UdpDirectory& directory,
                 UdpEndpoint& endpoint, std::unique_ptr<sim::NodeAgent> agent)
    : config_(config),
      id_(id),
      directory_(directory),
      endpoint_(endpoint),
      agent_(std::move(agent)),
      rng_(config.seed ^ (id * 0x9e3779b97f4a7c15ULL)),
      faults_(config.faults),
      fault_rng_(faults_.node_stream(id)) {
  if (!agent_) throw std::invalid_argument("peer requires an agent");
}

UdpPeer::~UdpPeer() { stop(); }

void UdpPeer::start() {
  if (thread_.joinable()) return;
  stop_.store(false);
  thread_ = std::thread([this] { run(); });
}

void UdpPeer::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true);
  thread_.join();
  // Surface this peer's reliability counters through the shared ledger:
  // fault-injected sends plus every datagram the endpoint rejected as
  // truncated or undecodable.
  const std::uint64_t rejected = endpoint_.rejected_datagrams();
  traffic_.rejected_messages = rejected - rejected_reported_;
  rejected_reported_ = rejected;
  directory_.merge_traffic(traffic_);
  traffic_ = sim::TrafficStats{};
}

bool UdpPeer::send_faulty(std::uint16_t to_port, EnvelopeKind kind,
                          std::uint64_t token,
                          std::span<const std::byte> payload) {
  const host::MessageFate fate = faults_.message_fate(fault_rng_);
  if (fate == host::MessageFate::kDrop) {
    ++traffic_.dropped_messages;
    return true;  // The sender cannot tell a dropped datagram from a sent one.
  }
  // The span aliases the agent's scratch; the envelope outlives the
  // callback, so copy (or corrupt) into an owned payload.
  std::vector<std::byte> bytes;
  if (fate == host::MessageFate::kCorrupt) {
    bytes = faults_.corrupt(payload, fault_rng_);
    ++traffic_.corrupted_messages;
  } else {
    bytes.assign(payload.begin(), payload.end());
  }
  if (fate == host::MessageFate::kDuplicate) {
    ++traffic_.duplicated_messages;
    endpoint_.send(to_port, Envelope{kind, id_, token, bytes});
  }
  return endpoint_.send(to_port, Envelope{kind, id_, token, std::move(bytes)});
}

sim::AgentContext UdpPeer::make_context() {
  return sim::AgentContext{directory_, directory_, id_,
                           local_round_, 0,         directory_.attribute_of(id_),
                           rng_};
}

void UdpPeer::run_on_peer(
    const std::function<void(sim::NodeAgent&, sim::AgentContext&)>& fn) {
  if (!thread_.joinable()) {
    sim::AgentContext ctx = make_context();
    fn(*agent_, ctx);
    return;
  }
  std::promise<void> done;
  auto future = done.get_future();
  {
    const std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.push_back([&fn, &done](sim::NodeAgent& agent,
                                  sim::AgentContext& ctx) {
      fn(agent, ctx);
      done.set_value();
    });
  }
  future.wait();  // The loop polls tasks at least once per receive timeout.
}

void UdpPeer::drain_tasks() {
  for (;;) {
    std::function<void(sim::NodeAgent&, sim::AgentContext&)> task;
    {
      const std::lock_guard<std::mutex> lock(tasks_mutex_);
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.erase(tasks_.begin());
    }
    sim::AgentContext ctx = make_context();
    task(*agent_, ctx);
  }
}

void UdpPeer::run() {
  auto jittered = [this] {
    const double factor =
        rng_.uniform(1.0 - config_.period_jitter, 1.0 + config_.period_jitter);
    return std::chrono::duration_cast<Clock::duration>(config_.gossip_period *
                                                       factor);
  };
  Clock::time_point next_tick = Clock::now() + jittered();
  while (!stop_.load(std::memory_order_relaxed)) {
    drain_tasks();
    const auto now = Clock::now();
    if (now >= next_tick) {
      sim::AgentContext ctx = make_context();
      tick(ctx);
      next_tick += jittered();
      continue;
    }
    const auto wait = std::min(
        std::chrono::duration_cast<std::chrono::microseconds>(next_tick - now),
        std::chrono::microseconds(2000));  // Bounded so tasks stay responsive.
    auto envelope = endpoint_.receive(wait);
    if (envelope) {
      sim::AgentContext ctx = make_context();
      handle(ctx, std::move(*envelope));
    }
  }
  drain_tasks();
}

void UdpPeer::tick(sim::AgentContext& ctx) {
  ++local_round_;
  agent_->on_round_start(ctx);
  if (session_.busy()) return;  // Atomicity.
  session_.abandon();           // Any previous lock has expired unanswered.

  auto request = agent_->make_request(ctx);
  if (request.empty()) return;
  const auto target = directory_.pick_gossip_target(id_, rng_);
  if (!target) return;
  directory_.record_traffic(id_, *target, sim::Channel::kAggregation,
                            request.size());
  const std::uint64_t token = session_.next_token();
  if (send_faulty(directory_.port_of(*target), EnvelopeKind::kGossipRequest,
                  token, request)) {
    session_.arm(token, config_.response_timeout);
  }
}

void UdpPeer::handle(sim::AgentContext& ctx, Envelope&& envelope) {
  switch (envelope.kind) {
    case EnvelopeKind::kGossipRequest: {
      if (session_.busy()) {
        endpoint_.send(directory_.port_of(envelope.from),
                       Envelope{EnvelopeKind::kGossipBusy, id_, envelope.token,
                                {}});
        return;
      }
      auto response = agent_->handle_request(ctx, envelope.payload);
      if (response.empty()) return;
      directory_.record_traffic(id_, envelope.from, sim::Channel::kAggregation,
                                response.size());
      send_faulty(directory_.port_of(envelope.from),
                  EnvelopeKind::kGossipResponse, envelope.token, response);
      return;
    }
    case EnvelopeKind::kGossipResponse:
      if (!session_.close_if_current(envelope.token)) return;  // Stale.
      agent_->handle_response(ctx, envelope.payload);
      return;
    case EnvelopeKind::kGossipBusy:
      (void)session_.close_if_current(envelope.token);
      return;
    case EnvelopeKind::kBootstrapRequest:
    case EnvelopeKind::kBootstrapResponse:
    case EnvelopeKind::kWakeup:
      return;  // Static membership: no join-time transfer needed.
  }
}

}  // namespace adam2::runtime
