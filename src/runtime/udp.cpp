#include "runtime/udp.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cassert>
#include <cstring>
#include <future>
#include <stdexcept>

#include "wire/buffer.hpp"

namespace adam2::runtime {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kHeaderBytes = 1 + 8 + 8;  // kind + from + token
constexpr std::size_t kMaxDatagram = 64 * 1024;

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

UdpEndpoint::UdpEndpoint() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr = loopback(0);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd_);
    throw std::runtime_error("bind() failed");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    throw std::runtime_error("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
}

UdpEndpoint::~UdpEndpoint() { shutdown(); }

void UdpEndpoint::shutdown() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

bool UdpEndpoint::send(std::uint16_t to_port, const Envelope& envelope) {
  if (fd_ < 0) return false;
  std::vector<std::byte> frame(kHeaderBytes + envelope.payload.size());
  frame[0] = static_cast<std::byte>(envelope.kind);
  std::memcpy(frame.data() + 1, &envelope.from, 8);
  std::memcpy(frame.data() + 9, &envelope.token, 8);
  if (!envelope.payload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, envelope.payload.data(),
                envelope.payload.size());
  }
  const sockaddr_in addr = loopback(to_port);
  const auto sent =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  return sent == static_cast<ssize_t>(frame.size());
}

std::optional<Envelope> UdpEndpoint::receive(
    std::chrono::microseconds timeout) {
  if (fd_ < 0) return std::nullopt;
  // A zero timeval means "block forever" to SO_RCVTIMEO. A caller's
  // sub-microsecond wait truncates to exactly that, which would wedge the
  // peer's receive loop (and its stop/join) until a stray datagram arrives.
  if (timeout <= std::chrono::microseconds::zero()) {
    timeout = std::chrono::microseconds{1};
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(timeout.count() % 1'000'000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    return std::nullopt;
  }
  std::byte buffer[kMaxDatagram];
  const auto received = ::recv(fd_, buffer, sizeof buffer, 0);
  if (received < 0) return std::nullopt;  // Timeout or socket closure.
  if (received < static_cast<ssize_t>(kHeaderBytes)) {
    // A datagram arrived but is too short to even frame an envelope: that is
    // wire truncation, not silence, and must show in the ledger.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const auto kind = static_cast<std::uint8_t>(buffer[0]);
  if (kind < static_cast<std::uint8_t>(EnvelopeKind::kGossipRequest) ||
      kind > static_cast<std::uint8_t>(EnvelopeKind::kGossipBusy)) {
    // Corrupted kind byte: the envelope cannot be dispatched safely.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  Envelope envelope;
  envelope.kind = static_cast<EnvelopeKind>(kind);
  std::memcpy(&envelope.from, buffer + 1, 8);
  std::memcpy(&envelope.token, buffer + 9, 8);
  envelope.payload.assign(buffer + kHeaderBytes, buffer + received);
  return envelope;
}

UdpDirectory::UdpDirectory(std::vector<stats::Value> attributes,
                           std::vector<std::uint16_t> ports)
    : attributes_(std::move(attributes)), ports_(std::move(ports)) {
  assert(attributes_.size() == ports_.size());
  ids_.resize(attributes_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    ids_[i] = static_cast<host::NodeId>(i);
  }
}

std::optional<host::NodeId> UdpDirectory::pick_gossip_target(
    host::NodeId id, rng::Rng& rng) const {
  if (ids_.size() < 2) return std::nullopt;
  for (;;) {
    const host::NodeId candidate = ids_[rng.below(ids_.size())];
    if (candidate != id) return candidate;
  }
}

std::vector<host::NodeId> UdpDirectory::neighbors(host::NodeId id) const {
  std::vector<host::NodeId> out;
  out.reserve(ids_.size() - 1);
  for (host::NodeId other : ids_) {
    if (other != id) out.push_back(other);
  }
  return out;
}

std::vector<stats::Value> UdpDirectory::known_attribute_values(
    host::NodeId id, const host::HostView& /*host*/) const {
  std::vector<stats::Value> values;
  values.reserve(attributes_.size() - 1);
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (static_cast<host::NodeId>(i) != id) values.push_back(attributes_[i]);
  }
  return values;
}

void UdpDirectory::record_traffic(host::NodeId, host::NodeId,
                                  host::Channel channel, std::size_t bytes) {
  ledger_.record_message(channel, bytes);
}

host::TrafficStats UdpDirectory::traffic() const { return ledger_.snapshot(); }

UdpPeer::UdpPeer(UdpPeerConfig config, host::NodeId id, UdpDirectory& directory,
                 UdpEndpoint& endpoint, std::unique_ptr<host::NodeAgent> agent)
    : config_(config),
      id_(id),
      directory_(directory),
      endpoint_(endpoint),
      agent_(std::move(agent)),
      rng_(config.seed ^ (id * 0x9e3779b97f4a7c15ULL)),
      conduit_(config.faults),
      fault_rng_(conduit_.faults().node_stream(id)),
      port_(conduit_, *this, fault_rng_, traffic_) {
  if (!agent_) throw std::invalid_argument("peer requires an agent");
}

UdpPeer::~UdpPeer() { stop(); }

void UdpPeer::start() {
  if (thread_.joinable()) return;
  stop_.store(false);
  thread_ = std::thread([this] { run(); });
}

void UdpPeer::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true);
  thread_.join();
  // Surface this peer's reliability counters through the shared ledger:
  // fault-injected sends plus every datagram the endpoint rejected as
  // truncated or undecodable.
  const std::uint64_t rejected = endpoint_.rejected_datagrams();
  traffic_.rejected_messages = rejected - rejected_reported_;
  rejected_reported_ = rejected;
  directory_.merge_traffic(traffic_);
  traffic_ = host::TrafficStats{};
}

bool UdpPeer::send_request(host::NodeId to, std::uint64_t token,
                           std::span<const std::byte> payload) {
  return send_envelope(to, EnvelopeKind::kGossipRequest, token, payload);
}

bool UdpPeer::send_response(host::NodeId to, std::uint64_t token,
                            std::span<const std::byte> payload) {
  return send_envelope(to, EnvelopeKind::kGossipResponse, token, payload);
}

void UdpPeer::send_busy(host::NodeId to, std::uint64_t token) {
  endpoint_.send(directory_.port_of(to),
                 Envelope{EnvelopeKind::kGossipBusy, id_, token, {}});
}

void UdpPeer::record_gossip_sent(host::NodeId peer, std::size_t bytes) {
  directory_.record_traffic(id_, peer, host::Channel::kAggregation, bytes);
}

void UdpPeer::record_gossip_received(host::NodeId /*peer*/,
                                     std::size_t /*bytes*/) {
  // The shared ledger counts each recorded message as both sent and
  // received (the global view of a point-to-point transfer), so a separate
  // receive-side record would double-count.
}

bool UdpPeer::send_envelope(host::NodeId to, EnvelopeKind kind,
                            std::uint64_t token,
                            std::span<const std::byte> payload) {
  // The span aliases the agent's (or the conduit's corruption) scratch; the
  // envelope outlives the callback, so copy into an owned payload.
  return endpoint_.send(
      directory_.port_of(to),
      Envelope{kind, id_, token,
               std::vector<std::byte>(payload.begin(), payload.end())});
}

host::AgentContext UdpPeer::make_context() {
  return host::AgentContext{directory_, directory_, id_,
                           local_round_, 0,         directory_.attribute_of(id_),
                           rng_};
}

void UdpPeer::run_on_peer(
    const std::function<void(host::NodeAgent&, host::AgentContext&)>& fn) {
  if (!thread_.joinable()) {
    host::AgentContext ctx = make_context();
    fn(*agent_, ctx);
    return;
  }
  std::promise<void> done;
  auto future = done.get_future();
  {
    const std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.push_back([&fn, &done](host::NodeAgent& agent,
                                  host::AgentContext& ctx) {
      fn(agent, ctx);
      done.set_value();
    });
  }
  future.wait();  // The loop polls tasks at least once per receive timeout.
}

void UdpPeer::restart(const host::AgentFactory& factory) {
  const bool warm = config_.faults.warm_restart;
  // The swap itself must happen on the peer's thread (the only place agent_
  // may be touched while running); run_on_peer posts there and blocks. The
  // task's agent reference points at the old agent and is not used after the
  // replacement.
  run_on_peer([&](host::NodeAgent& /*agent*/, host::AgentContext& ctx) {
    wire::Writer blob;
    const bool carry = warm && agent_->save_state(blob);
    auto fresh = factory(ctx);
    if (!fresh) throw std::runtime_error("agent factory returned null");
    if (carry) {
      wire::Reader in(blob.view());
      if (!fresh->restore_state(in)) {
        // The blob was produced by save_state moments ago; rejection means
        // the agent's save/restore pair is asymmetric — a bug, not bad input.
        throw std::runtime_error(
            "warm restart: agent rejected its own state blob");
      }
      in.expect_done();
    }
    agent_ = std::move(fresh);
    port_.session().abandon();
    ++traffic_.crash_restarts;
  });
}

void UdpPeer::drain_tasks() {
  for (;;) {
    std::function<void(host::NodeAgent&, host::AgentContext&)> task;
    {
      const std::lock_guard<std::mutex> lock(tasks_mutex_);
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.erase(tasks_.begin());
    }
    host::AgentContext ctx = make_context();
    task(*agent_, ctx);
  }
}

void UdpPeer::run() {
  auto jittered = [this] {
    const double factor =
        rng_.uniform(1.0 - config_.period_jitter, 1.0 + config_.period_jitter);
    return std::chrono::duration_cast<Clock::duration>(config_.gossip_period *
                                                       factor);
  };
  Clock::time_point next_tick = Clock::now() + jittered();
  while (!stop_.load(std::memory_order_relaxed)) {
    drain_tasks();
    const auto now = Clock::now();
    if (now >= next_tick) {
      host::AgentContext ctx = make_context();
      tick(ctx);
      next_tick += jittered();
      continue;
    }
    const auto wait = std::min(
        std::chrono::duration_cast<std::chrono::microseconds>(next_tick - now),
        std::chrono::microseconds(2000));  // Bounded so tasks stay responsive.
    auto envelope = endpoint_.receive(wait);
    if (envelope) {
      host::AgentContext ctx = make_context();
      handle(ctx, std::move(*envelope));
    }
  }
  drain_tasks();
}

void UdpPeer::tick(host::AgentContext& ctx) {
  ++local_round_;
  agent_->on_round_start(ctx);
  // The directory always yields a target (static full membership), so a
  // failed initiation here is only the port declining (locked or silent) or
  // a socket-level send failure — nothing to count.
  (void)port_.initiate(
      *agent_, ctx, [this] { return directory_.pick_gossip_target(id_, rng_); },
      config_.response_timeout);
}

void UdpPeer::handle(host::AgentContext& ctx, Envelope&& envelope) {
  switch (envelope.kind) {
    case EnvelopeKind::kGossipRequest:
      port_.on_request(*agent_, ctx, envelope.from, envelope.token,
                       envelope.payload);
      return;
    case EnvelopeKind::kGossipResponse:
      port_.on_response(*agent_, ctx, envelope.from, envelope.token,
                        envelope.payload);
      return;
    case EnvelopeKind::kGossipBusy:
      port_.on_busy(envelope.token);
      return;
    case EnvelopeKind::kBootstrapRequest:
    case EnvelopeKind::kBootstrapResponse:
    case EnvelopeKind::kWakeup:
      return;  // Static membership: no join-time transfer needed.
  }
}

}  // namespace adam2::runtime
