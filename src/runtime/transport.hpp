// In-process datagram transport for the threaded runtime.
//
// Every node owns a Mailbox; the shared Network routes envelopes between
// mailboxes. Envelopes carry a kind tag (gossip request/response, bootstrap
// request/response) plus the sender id, so a receiving node knows which
// agent callback to invoke — exactly the framing a UDP deployment would put
// in front of the protocol payload.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "host/types.hpp"

namespace adam2::runtime {

enum class EnvelopeKind : std::uint8_t {
  kGossipRequest = 1,
  kGossipResponse = 2,
  kBootstrapRequest = 3,
  kBootstrapResponse = 4,
  kWakeup = 5,  ///< Empty self-notification (task queue poke).
  kGossipBusy = 6,  ///< NACK: responder is mid-exchange; requester unlocks.
};

struct Envelope {
  EnvelopeKind kind = EnvelopeKind::kGossipRequest;
  host::NodeId from = 0;
  /// Exchange token: stamped on requests, echoed on responses, so a
  /// requester can discard responses to exchanges it already timed out of
  /// (merging a stale response would break exchange atomicity).
  std::uint64_t token = 0;
  std::vector<std::byte> payload;
};

/// A node's inbound queue. Threads block on `wait_pop` with a deadline so
/// the node loop wakes for whichever comes first: a message or its next
/// gossip tick.
class Mailbox {
 public:
  void push(Envelope envelope);

  /// Pops the oldest envelope, waiting at most until `deadline`.
  /// Returns nullopt on timeout or when the mailbox is closed and empty.
  [[nodiscard]] std::optional<Envelope> wait_pop(
      std::chrono::steady_clock::time_point deadline);

  /// Non-blocking pop.
  [[nodiscard]] std::optional<Envelope> try_pop();

  /// Wakes all waiters; subsequent waits return immediately when empty.
  void close();

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Envelope> queue_;
  bool closed_ = false;
};

/// Thread-safe router between mailboxes. Delivery is immediate (in-process);
/// traffic is counted per direction for the cost accounting.
class Network {
 public:
  /// Registers `mailbox` as the endpoint for `id`. The mailbox must outlive
  /// the network or be deregistered first.
  void attach(host::NodeId id, Mailbox* mailbox);
  void detach(host::NodeId id);

  /// Routes an envelope; returns false (and drops it) when the destination
  /// is not attached.
  bool send(host::NodeId to, Envelope envelope);

  [[nodiscard]] std::uint64_t messages_routed() const;
  [[nodiscard]] std::uint64_t bytes_routed() const;
  [[nodiscard]] std::uint64_t drops() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<host::NodeId, Mailbox*> endpoints_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace adam2::runtime
