// Threaded in-process deployment of the protocol agents.
//
// Where sim::Engine and sim::AsyncEngine *simulate* time, the Cluster runs
// every node on a real thread against the wall clock: nodes gossip on their
// own jittered timers, exchange framed datagrams through the in-process
// Network, and apply the same exchange-atomicity discipline as the
// asynchronous engine (a node awaiting a response refuses other exchanges
// until it arrives or times out). The protocol agents are the exact same
// NodeAgent objects the simulators host — nothing about Adam2 changes when
// the substrate becomes genuinely concurrent.
//
// Membership is static (no churn): the runtime demonstrates deployment-style
// concurrency, not the churn model, which the simulators cover.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "host/exchange.hpp"
#include "host/fault.hpp"
#include "obs/recorder.hpp"
#include "rng/rng.hpp"
#include "runtime/transport.hpp"
#include "host/agent.hpp"
#include "sim/overlay.hpp"
#include "host/traffic.hpp"

namespace adam2::runtime {

struct ClusterConfig {
  /// Mean wall-clock time between a node's gossip initiations.
  std::chrono::microseconds gossip_period{2000};
  double period_jitter = 0.2;  ///< Relative uniform jitter per period.
  /// How long a node stays locked waiting for a response before giving up.
  std::chrono::microseconds response_timeout{20000};
  std::size_t overlay_degree = 8;
  std::uint64_t seed = 0xc1a5;
  /// Deterministic fault schedule for gossip messages (drop, duplication,
  /// corruption). Crash-restarts are driver-triggered (restart_node) rather
  /// than drawn per round — the wall clock has no rounds — and honour the
  /// plan's warm_restart knob. Partitions are simulator-only; delay is
  /// meaningless here because the wall clock already supplies real latency.
  host::FaultPlan faults;
};

class Cluster {
 public:
  /// Builds (but does not start) a cluster of `attributes.size()` nodes.
  Cluster(ClusterConfig config, std::vector<stats::Value> attributes,
          host::AgentFactory agent_factory);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Launches one thread per node. Idempotent.
  void start();

  /// Signals every node to finish and joins the threads. Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Executes `fn(agent, ctx)` on the node's own thread and blocks until it
  /// completes — the only safe way to touch an agent while the cluster runs
  /// (e.g. to start an aggregation instance or copy an estimate out).
  using NodeTask = std::function<void(host::NodeAgent&, host::AgentContext&)>;
  void run_on_node(host::NodeId id, NodeTask fn);

  /// Crash-restarts one node in place, on its own thread (blocking): the
  /// agent is replaced through the factory and any in-flight exchange is
  /// abandoned — the lock died with the process. With
  /// `config.faults.warm_restart` the agent's protocol state is carried
  /// across through the host::snapshot hooks (DESIGN.md §12), so the node
  /// rejoins its running instances; cold restarts lose all protocol state.
  /// Either way the port's token counter survives, so the first post-restart
  /// exchange uses a fresh token and pre-crash responses are rejected as
  /// stale instead of merged. Counted in crash_restarts.
  void restart_node(host::NodeId id);

  /// Aggregate traffic across all nodes (safe any time; counters are only
  /// approximate while threads are running).
  [[nodiscard]] host::TrafficStats total_traffic() const;

  [[nodiscard]] const Network& network() const { return network_; }

  /// Attaches the observability recorder (nullptr detaches; not owned). The
  /// Recorder is single-threaded by contract, so a wall-clock runtime only
  /// touches it from the driver thread: start() records the engine-start
  /// event, stop() absorbs the final traffic snapshot and records
  /// engine-stop after the node threads have joined. Per-event tracing is a
  /// simulator feature (DESIGN.md §11). Call before start().
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }
  [[nodiscard]] obs::Recorder* recorder() const { return recorder_; }

 private:
  class RuntimeNode;
  class HostBridge;

  ClusterConfig config_;
  /// The shared exchange fabric (no legacy loss knob here: real message
  /// transfer either works or does not).
  host::Conduit conduit_;
  std::vector<stats::Value> attributes_;
  /// Kept past construction so restart_node can rebuild crashed agents.
  host::AgentFactory agent_factory_;
  std::vector<host::NodeId> ids_;
  Network network_;
  std::unique_ptr<host::Overlay> overlay_;
  std::unique_ptr<HostBridge> host_;
  std::vector<std::unique_ptr<RuntimeNode>> nodes_;
  std::atomic<bool> running_{false};
  obs::Recorder* recorder_ = nullptr;  // Driver-thread only; see set_recorder.
};

}  // namespace adam2::runtime
