#include "runtime/transport.hpp"

#include <chrono>

namespace adam2::runtime {

void Mailbox::push(Envelope envelope) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    queue_.push_back(std::move(envelope));
  }
  ready_.notify_one();
}

std::optional<Envelope> Mailbox::wait_pop(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait_until(lock, deadline,
                    [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;
  Envelope envelope = std::move(queue_.front());
  queue_.pop_front();
  return envelope;
}

std::optional<Envelope> Mailbox::try_pop() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  Envelope envelope = std::move(queue_.front());
  queue_.pop_front();
  return envelope;
}

void Mailbox::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t Mailbox::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void Network::attach(host::NodeId id, Mailbox* mailbox) {
  const std::lock_guard<std::mutex> lock(mutex_);
  endpoints_[id] = mailbox;
}

void Network::detach(host::NodeId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  endpoints_.erase(id);
}

bool Network::send(host::NodeId to, Envelope envelope) {
  Mailbox* mailbox = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      ++drops_;
      return false;
    }
    mailbox = it->second;
    ++messages_;
    bytes_ += envelope.payload.size();
  }
  mailbox->push(std::move(envelope));
  return true;
}

std::uint64_t Network::messages_routed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return messages_;
}

std::uint64_t Network::bytes_routed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::uint64_t Network::drops() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return drops_;
}

}  // namespace adam2::runtime
