// Real-socket deployment path: Adam2 agents gossiping over loopback UDP.
//
// UdpEndpoint frames Envelopes onto UDP datagrams
// ([kind u8][from u64][token u64][payload]) on a 127.0.0.1 socket with an
// OS-assigned port. UdpPeer hosts one NodeAgent on its own thread, driving
// the same tick / busy-lock / NACK / stale-token discipline as the
// in-process Cluster — but with genuine sockets, so the protocol stack is
// exercised against real datagram semantics (kernel buffering, drops under
// pressure). Peer discovery is a static Directory (id -> port) shared by
// all peers, standing in for whatever membership service a deployment uses.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "host/exchange.hpp"
#include "host/fault.hpp"
#include "host/ledger.hpp"
#include "obs/recorder.hpp"
#include "rng/rng.hpp"
#include "runtime/transport.hpp"
#include "host/agent.hpp"
#include "sim/overlay.hpp"
#include "host/traffic.hpp"

namespace adam2::runtime {

/// A bound loopback UDP socket speaking the Envelope framing.
class UdpEndpoint {
 public:
  /// Binds 127.0.0.1 with an ephemeral port. Throws on failure.
  UdpEndpoint();
  ~UdpEndpoint();

  UdpEndpoint(const UdpEndpoint&) = delete;
  UdpEndpoint& operator=(const UdpEndpoint&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Sends an envelope to a loopback port. Returns false on send failure.
  bool send(std::uint16_t to_port, const Envelope& envelope);

  /// Receives one envelope, waiting at most `timeout`. Returns nullopt on
  /// timeout, socket closure, or an undecodable datagram — the last case is
  /// counted in rejected_datagrams(), so truncation on the wire is
  /// distinguishable from plain silence.
  [[nodiscard]] std::optional<Envelope> receive(
      std::chrono::microseconds timeout);

  /// Datagrams discarded because they were shorter than the envelope header
  /// or carried an invalid kind byte (truncation/corruption on the wire).
  /// Safe to read from any thread.
  [[nodiscard]] std::uint64_t rejected_datagrams() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Unblocks receivers and makes further sends fail.
  void shutdown();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<std::uint64_t> rejected_{0};
};

/// Static membership + address book shared by all peers of one deployment:
/// node id -> UDP port, plus the attribute directory that stands in for the
/// peer-sampling value cache. Doubles as the host::Overlay and host::HostView
/// the agents see.
class UdpDirectory final : public host::Overlay, public host::HostView {
 public:
  UdpDirectory(std::vector<stats::Value> attributes,
               std::vector<std::uint16_t> ports);

  [[nodiscard]] std::uint16_t port_of(host::NodeId id) const {
    return ports_[static_cast<std::size_t>(id)];
  }

  // -- host::Overlay (full random membership) -----------------------------
  void add_node(host::NodeId, const host::HostView&, rng::Rng&) override {}
  void remove_node(host::NodeId) override {}
  [[nodiscard]] std::optional<host::NodeId> pick_gossip_target(
      host::NodeId id, rng::Rng& rng) const override;
  [[nodiscard]] std::vector<host::NodeId> neighbors(host::NodeId id) const override;
  [[nodiscard]] std::vector<stats::Value> known_attribute_values(
      host::NodeId id, const host::HostView& host) const override;

  // -- host::HostView ------------------------------------------------------
  [[nodiscard]] bool is_live(host::NodeId id) const override {
    return id < attributes_.size();
  }
  [[nodiscard]] stats::Value attribute_of(host::NodeId id) const override {
    return attributes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] host::Round round() const override { return 0; }
  [[nodiscard]] std::span<const host::NodeId> live_ids() const override {
    return ids_;
  }
  void record_traffic(host::NodeId, host::NodeId, host::Channel channel,
                      std::size_t bytes) override;

  [[nodiscard]] host::TrafficStats traffic() const;

  /// Folds a peer's local counters (fault injection, rejected datagrams)
  /// into the shared ledger, so fault-injection runs and real runs report
  /// the same fields through host::metrics.
  void merge_traffic(const host::TrafficStats& stats) { ledger_.merge(stats); }

  /// Absorbs the current ledger snapshot into `recorder`'s metrics registry.
  /// The Recorder is single-threaded by contract, so call this from the
  /// driver thread — typically after every peer has stopped, when the
  /// counters are exact (each UdpPeer::stop() merges its local counters into
  /// the ledger first).
  void publish_traffic(obs::Recorder& recorder) const {
    recorder.set_traffic(traffic());
  }

 private:
  std::vector<stats::Value> attributes_;
  std::vector<std::uint16_t> ports_;
  std::vector<host::NodeId> ids_;
  host::SharedTrafficLedger ledger_;
};

struct UdpPeerConfig {
  std::chrono::microseconds gossip_period{3000};
  double period_jitter = 0.2;
  std::chrono::microseconds response_timeout{30000};
  std::uint64_t seed = 1;
  /// Deterministic fault schedule for outgoing gossip datagrams (drop,
  /// duplication, corruption — exercised against real sockets, so corrupted
  /// bytes cross the kernel and hit the receiver's validation walk). The
  /// plan's warm_restart knob selects whether UdpPeer::restart carries the
  /// agent's protocol state across.
  host::FaultPlan faults;
};

/// One protocol node over a real socket; owns its agent and thread. The
/// request→response state machine (busy lock, NACK, stale-token rejection,
/// faulty sends) lives in the shared host::SessionedPort; this class is the
/// port's Transport adapter over the UDP endpoint plus the thread plumbing.
class UdpPeer final : private host::SessionedPort::Transport {
 public:
  UdpPeer(UdpPeerConfig config, host::NodeId id, UdpDirectory& directory,
          UdpEndpoint& endpoint, std::unique_ptr<host::NodeAgent> agent);
  ~UdpPeer();

  void start();
  void stop();

  /// Executes `fn(agent, ctx)` on the peer's thread (blocking), as
  /// Cluster::run_on_node does.
  void run_on_peer(const std::function<void(host::NodeAgent&,
                                            host::AgentContext&)>& fn);

  /// Crash-restarts this peer's agent in place, on the peer's own thread
  /// (blocking; inline while stopped). With `config.faults.warm_restart` the
  /// agent's protocol state is carried across through the host::snapshot
  /// hooks (DESIGN.md §12); cold restarts lose it. The in-flight exchange is
  /// abandoned but the port's token counter survives, so the first
  /// post-restart initiation stamps a fresh token and straggler datagrams
  /// answering the pre-crash exchange are rejected as stale, not merged.
  /// Counted in crash_restarts.
  void restart(const host::AgentFactory& factory);

 private:
  void run();
  void tick(host::AgentContext& ctx);
  void handle(host::AgentContext& ctx, Envelope&& envelope);
  host::AgentContext make_context();
  void drain_tasks();

  // -- host::SessionedPort::Transport (loopback-datagram adapter) ----------
  bool send_request(host::NodeId to, std::uint64_t token,
                    std::span<const std::byte> payload) override;
  bool send_response(host::NodeId to, std::uint64_t token,
                     std::span<const std::byte> payload) override;
  void send_busy(host::NodeId to, std::uint64_t token) override;
  void record_gossip_sent(host::NodeId peer, std::size_t bytes) override;
  void record_gossip_received(host::NodeId peer, std::size_t bytes) override;
  bool send_envelope(host::NodeId to, EnvelopeKind kind, std::uint64_t token,
                     std::span<const std::byte> payload);

  UdpPeerConfig config_;
  host::NodeId id_;
  UdpDirectory& directory_;
  UdpEndpoint& endpoint_;
  std::unique_ptr<host::NodeAgent> agent_;
  rng::Rng rng_;
  /// The shared exchange fabric (fault plan only: loss, latency and
  /// reordering come for free from real datagram semantics).
  host::Conduit conduit_;
  rng::Rng fault_rng_;
  /// Local fault/reliability counters, merged into the directory ledger at
  /// stop() so every substrate reports the same schema.
  host::TrafficStats traffic_;
  /// Endpoint rejections already folded into the ledger (stop() reports the
  /// delta, so repeated start/stop cycles never double-count).
  std::uint64_t rejected_reported_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  host::Round local_round_ = 0;
  /// Declared after conduit_, fault_rng_ and traffic_ (it references all
  /// three).
  host::SessionedPort port_;
  std::mutex tasks_mutex_;
  std::vector<std::function<void(host::NodeAgent&, host::AgentContext&)>> tasks_;
};

}  // namespace adam2::runtime
