// EquiDepth baseline (Haridasan & van Renesse, ref [3]): gossip-based
// distribution estimation with equi-depth histogram synopses.
//
// Each node keeps a bounded synopsis of weighted value centroids. A phase
// starts with the node's own value; every exchange unions the two synopses
// and recompresses to the bin budget. Because a peer's synopsis re-enters
// counting on every exchange, previously seen mass is duplicated — the
// "sample duplication" the paper blames for EquiDepth's error floor (§VII-A).
// Unlike Adam2, the bins are never refined from a previous estimate, so the
// error does not improve across phases (§VII-C, Fig. 8).
//
// Phases mirror Adam2 instances (same frequency, duration, and bin count) to
// keep the comparison fair, as in the paper.
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "host/agent.hpp"
#include "sim/engine.hpp"
#include "stats/cdf.hpp"
#include "stats/error_metrics.hpp"
#include "stats/histogram.hpp"
#include "wire/messages.hpp"

namespace adam2::baselines {

struct EquiDepthConfig {
  std::size_t bins = 50;          ///< Synopsis capacity (the paper's lambda).
  std::uint16_t phase_ttl = 25;   ///< Rounds per phase.
  double restart_every_r = 0.0;   ///< Probabilistic phase starts (0 = scripted).
  double initial_n_estimate = 0.0;
};

/// A completed phase's outcome at one node.
struct EquiDepthEstimate {
  wire::InstanceId phase;
  host::Round completed_round = 0;
  stats::PiecewiseLinearCdf cdf;
  std::vector<stats::WeightedValue> synopsis;
  bool inherited = false;
};

class EquiDepthAgent final : public host::NodeAgent {
 public:
  explicit EquiDepthAgent(EquiDepthConfig config);

  void on_round_start(host::AgentContext& ctx) override;
  [[nodiscard]] std::span<const std::byte> make_request(
      host::AgentContext& ctx) override;
  [[nodiscard]] std::span<const std::byte> handle_request(
      host::AgentContext& ctx, std::span<const std::byte> request) override;
  void handle_response(host::AgentContext& ctx,
                       std::span<const std::byte> response) override;
  [[nodiscard]] std::vector<std::byte> make_bootstrap_request(
      host::AgentContext& ctx) override;
  [[nodiscard]] std::vector<std::byte> handle_bootstrap_request(
      host::AgentContext& ctx, std::span<const std::byte> request) override;
  bool handle_bootstrap_response(host::AgentContext& ctx,
                                 std::span<const std::byte> response) override;

  /// Starts a phase on this node (scripted mode).
  wire::InstanceId start_phase(host::AgentContext& ctx);

  [[nodiscard]] const std::optional<EquiDepthEstimate>& estimate() const {
    return estimate_;
  }
  [[nodiscard]] std::size_t active_phase_count() const { return active_.size(); }

  /// Current synopsis of a running phase (empty when not participating).
  [[nodiscard]] std::vector<stats::WeightedValue> phase_synopsis(
      wire::InstanceId id) const;

 private:
  struct Phase {
    wire::InstanceId id;
    host::Round start_round = 0;
    std::uint16_t ttl = 0;
    std::vector<stats::WeightedValue> synopsis;
  };

  [[nodiscard]] bool eligible(const host::AgentContext& ctx,
                              const wire::EquiDepthMessage& msg) const;
  [[nodiscard]] Phase join_phase(const host::AgentContext& ctx,
                                 const wire::EquiDepthMessage& msg) const;
  void merge(Phase& phase, const std::vector<stats::WeightedValue>& other);
  void finalize(Phase&& phase);
  [[nodiscard]] wire::EquiDepthMessage message_for(
      const Phase& phase, wire::MessageType type, host::NodeId self) const;

  EquiDepthConfig config_;
  std::unordered_map<wire::InstanceId, Phase, wire::InstanceIdHash> active_;
  /// Join/start order of the keys in active_. Traversals (TTL pass, the
  /// which-phase-gossips-now pick) walk this vector so gossip content never
  /// depends on hash-bucket layout (adam2_lint rule `unordered-iter`).
  std::vector<wire::InstanceId> active_order_;
  std::optional<EquiDepthEstimate> estimate_;
  double n_estimate_ = 0.0;
  std::uint32_t next_seq_ = 0;
  /// Tombstones of finished phases (see Adam2Agent::finalized_ids_).
  std::unordered_set<wire::InstanceId, wire::InstanceIdHash> finalized_ids_;
  std::deque<wire::InstanceId> finalized_order_;
  static constexpr std::size_t kFinalizedMemory = 128;
  /// Backs the spans returned by make_request/handle_request (the baseline
  /// is not a hot path; a reused owning buffer satisfies the agent contract).
  std::vector<std::byte> wire_scratch_;
};

/// Population errors of completed EquiDepth estimates (cf. core::evaluate_*).
struct EquiDepthPopulationErrors {
  double max_err = 0.0;
  double avg_err = 0.0;
  std::size_t peers = 0;
  std::size_t missing = 0;
};

[[nodiscard]] EquiDepthPopulationErrors evaluate_equidepth(
    sim::Engine& engine, const stats::EmpiricalCdf& truth,
    std::size_t peer_sample = 0, bool include_inherited = true,
    bool missing_counts_as_one = true);

/// In-flight errors of a running phase: over the entire CDF, and at the
/// synopsis bin positions ("selected bins", Fig. 6(b)/12(b)).
struct EquiDepthInstantErrors {
  stats::ErrorPair entire;
  stats::ErrorPair at_bins;
  std::size_t peers = 0;
};

/// `born_by`: only evaluate peers born at or before this round (excludes
/// nodes that joined the system during the phase, as in Fig. 12).
[[nodiscard]] EquiDepthInstantErrors evaluate_equidepth_phase(
    sim::Engine& engine, wire::InstanceId phase,
    const stats::EmpiricalCdf& truth, std::size_t peer_sample = 0,
    std::optional<host::Round> born_by = {});

}  // namespace adam2::baselines
