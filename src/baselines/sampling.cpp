#include "baselines/sampling.hpp"

#include <cassert>
#include <vector>

namespace adam2::baselines {

stats::PiecewiseLinearCdf sample_cdf(std::span<const stats::Value> sample) {
  assert(!sample.empty());
  const stats::EmpiricalCdf empirical{
      std::vector<stats::Value>(sample.begin(), sample.end())};
  const auto distinct = empirical.distinct_values();
  const auto fractions = empirical.cumulative_fractions();
  std::vector<stats::CdfPoint> knots;
  knots.reserve(distinct.size());
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    knots.push_back({static_cast<double>(distinct[i]), fractions[i]});
  }
  return stats::PiecewiseLinearCdf{std::move(knots)};
}

SamplingResult estimate_by_sampling(std::span<const stats::Value> population,
                                    const SamplingConfig& config,
                                    rng::Rng& rng) {
  assert(!population.empty());
  assert(config.sample_size >= 1);
  std::vector<stats::Value> sample;
  sample.reserve(config.sample_size);
  for (std::size_t i = 0; i < config.sample_size; ++i) {
    sample.push_back(population[rng.below(population.size())]);
  }
  const stats::EmpiricalCdf truth{
      std::vector<stats::Value>(population.begin(), population.end())};

  SamplingResult result;
  result.errors = stats::discrete_errors(truth, sample_cdf(sample));
  result.messages = config.sample_size * config.walk_hops;
  result.bytes_estimate = result.messages * 48;
  return result;
}

}  // namespace adam2::baselines
