#include "baselines/equidepth.hpp"

#include <algorithm>
#include <cassert>

#include "stats/summary.hpp"

namespace adam2::baselines {

EquiDepthAgent::EquiDepthAgent(EquiDepthConfig config) : config_(config) {
  assert(config_.bins >= 2);
  assert(config_.phase_ttl >= 1);
}

bool EquiDepthAgent::eligible(const host::AgentContext& ctx,
                              const wire::EquiDepthMessage& msg) const {
  return msg.start_round >= ctx.birth_round &&
         !finalized_ids_.contains(msg.phase);
}

void EquiDepthAgent::on_round_start(host::AgentContext& ctx) {
  std::vector<wire::InstanceId> finished;
  for (const wire::InstanceId id : active_order_) {
    Phase& phase = active_.find(id)->second;
    if (phase.ttl == 0) {
      finished.push_back(id);
      continue;
    }
    --phase.ttl;
  }
  for (wire::InstanceId id : finished) {
    auto it = active_.find(id);
    Phase phase = std::move(it->second);
    active_.erase(it);
    std::erase(active_order_, id);
    finalize(std::move(phase));
  }

  if (config_.restart_every_r > 0.0) {
    const double np =
        n_estimate_ > 0.0 ? n_estimate_ : config_.initial_n_estimate;
    if (np >= 1.0 &&
        ctx.rng.bernoulli(1.0 / (np * config_.restart_every_r))) {
      start_phase(ctx);
    }
  }
}

wire::InstanceId EquiDepthAgent::start_phase(host::AgentContext& ctx) {
  Phase phase;
  phase.id = wire::InstanceId{ctx.self, next_seq_++};
  phase.start_round = ctx.round;
  phase.ttl = config_.phase_ttl;
  phase.synopsis = {{static_cast<double>(ctx.attribute), 1.0}};
  const wire::InstanceId id = phase.id;
  active_.emplace(id, std::move(phase));
  active_order_.push_back(id);
  return id;
}

wire::EquiDepthMessage EquiDepthAgent::message_for(const Phase& phase,
                                                   wire::MessageType type,
                                                   host::NodeId self) const {
  wire::EquiDepthMessage msg;
  msg.type = type;
  msg.sender = self;
  msg.phase = phase.id;
  msg.start_round = phase.start_round;
  msg.ttl = phase.ttl;
  msg.synopsis = phase.synopsis;
  return msg;
}

std::span<const std::byte> EquiDepthAgent::make_request(
    host::AgentContext& ctx) {
  if (active_.empty()) return {};
  // One phase per message keeps the format simple; concurrent phases take
  // turns. (The paper's comparison runs one phase at a time.) The oldest
  // active phase gossips: a deterministic pick, where *active_.begin() would
  // let the hash table's bucket layout choose the wire content.
  const Phase& phase = active_.find(active_order_.front())->second;
  wire_scratch_ =
      message_for(phase, wire::MessageType::kEquiDepthRequest, ctx.self)
          .encode();
  return wire_scratch_;
}

EquiDepthAgent::Phase EquiDepthAgent::join_phase(
    const host::AgentContext& ctx, const wire::EquiDepthMessage& msg) const {
  Phase phase;
  phase.id = msg.phase;
  phase.start_round = msg.start_round;
  phase.ttl = msg.ttl;
  phase.synopsis = {{static_cast<double>(ctx.attribute), 1.0}};
  return phase;
}

void EquiDepthAgent::merge(Phase& phase,
                           const std::vector<stats::WeightedValue>& other) {
  // Push-pull averaging of the two synopses as distributions: each side is
  // renormalised to unit weight, halved, unioned, and recompressed to the
  // bin budget. Samples this node already absorbed re-enter through the
  // received synopsis (the duplication of §VII-A), and every exchange loses
  // detail to the equi-depth compression — together these floor the accuracy
  // at a few percent regardless of how long the phase runs.
  double mine = 0.0;
  for (const stats::WeightedValue& s : phase.synopsis) mine += s.weight;
  double theirs = 0.0;
  for (const stats::WeightedValue& s : other) theirs += s.weight;
  if (theirs <= 0.0) return;
  if (mine <= 0.0) {
    phase.synopsis = other;
    return;
  }
  std::vector<stats::WeightedValue> merged;
  merged.reserve(phase.synopsis.size() + other.size());
  for (const stats::WeightedValue& s : phase.synopsis) {
    merged.push_back({s.value, s.weight / (2.0 * mine)});
  }
  for (const stats::WeightedValue& s : other) {
    merged.push_back({s.value, s.weight / (2.0 * theirs)});
  }
  phase.synopsis = stats::compress_equi_depth(std::move(merged), config_.bins);
}

std::span<const std::byte> EquiDepthAgent::handle_request(
    host::AgentContext& ctx, std::span<const std::byte> request) {
  wire::EquiDepthMessage incoming;
  try {
    incoming = wire::EquiDepthMessage::decode(request);
  } catch (const wire::DecodeError&) {
    return {};
  }
  if (!eligible(ctx, incoming)) return {};

  auto it = active_.find(incoming.phase);
  if (it == active_.end()) {
    Phase joined = join_phase(ctx, incoming);
    auto reply = message_for(joined, wire::MessageType::kEquiDepthResponse,
                             ctx.self);
    merge(joined, incoming.synopsis);
    active_.emplace(incoming.phase, std::move(joined));
    active_order_.push_back(incoming.phase);
    wire_scratch_ = reply.encode();
    return wire_scratch_;
  }
  auto reply =
      message_for(it->second, wire::MessageType::kEquiDepthResponse, ctx.self);
  merge(it->second, incoming.synopsis);
  wire_scratch_ = reply.encode();
  return wire_scratch_;
}

void EquiDepthAgent::handle_response(host::AgentContext& ctx,
                                     std::span<const std::byte> response) {
  wire::EquiDepthMessage incoming;
  try {
    incoming = wire::EquiDepthMessage::decode(response);
  } catch (const wire::DecodeError&) {
    return;
  }
  if (!eligible(ctx, incoming)) return;
  auto it = active_.find(incoming.phase);
  if (it == active_.end()) {
    Phase joined = join_phase(ctx, incoming);
    merge(joined, incoming.synopsis);
    active_.emplace(incoming.phase, std::move(joined));
    active_order_.push_back(incoming.phase);
    return;
  }
  merge(it->second, incoming.synopsis);
}

void EquiDepthAgent::finalize(Phase&& phase) {
  finalized_ids_.insert(phase.id);
  finalized_order_.push_back(phase.id);
  while (finalized_order_.size() > kFinalizedMemory) {
    finalized_ids_.erase(finalized_order_.front());
    finalized_order_.pop_front();
  }

  EquiDepthEstimate result;
  result.phase = phase.id;
  result.completed_round = phase.start_round + config_.phase_ttl;
  result.synopsis = std::move(phase.synopsis);
  if (!result.synopsis.empty()) {
    result.cdf = stats::centroids_to_cdf(result.synopsis);
  }
  estimate_ = std::move(result);
}

std::vector<stats::WeightedValue> EquiDepthAgent::phase_synopsis(
    wire::InstanceId id) const {
  auto it = active_.find(id);
  return it == active_.end() ? std::vector<stats::WeightedValue>{}
                             : it->second.synopsis;
}

std::vector<std::byte> EquiDepthAgent::make_bootstrap_request(
    host::AgentContext& ctx) {
  return wire::BootstrapRequest{ctx.self}.encode();
}

std::vector<std::byte> EquiDepthAgent::handle_bootstrap_request(
    host::AgentContext& ctx, std::span<const std::byte> request) {
  try {
    (void)wire::BootstrapRequest::decode(request);
  } catch (const wire::DecodeError&) {
    return {};
  }
  wire::BootstrapResponse response;
  response.sender = ctx.self;
  response.n_estimate = n_estimate_;
  if (estimate_ && !estimate_->cdf.empty()) {
    const auto knots = estimate_->cdf.knots();
    response.cdf_knots.assign(knots.begin(), knots.end());
    response.min_value = knots.front().t;
    response.max_value = knots.back().t;
  }
  return response.encode();
}

bool EquiDepthAgent::handle_bootstrap_response(
    host::AgentContext& ctx, std::span<const std::byte> response) {
  wire::BootstrapResponse incoming;
  try {
    incoming = wire::BootstrapResponse::decode(response);
  } catch (const wire::DecodeError&) {
    return false;
  }
  if (incoming.n_estimate > 0.0) n_estimate_ = incoming.n_estimate;
  if (incoming.cdf_knots.empty()) return false;
  EquiDepthEstimate inherited;
  inherited.completed_round = ctx.round;
  inherited.cdf = stats::PiecewiseLinearCdf{std::move(incoming.cdf_knots)};
  inherited.inherited = true;
  estimate_ = std::move(inherited);
  return true;
}

namespace {

std::vector<host::NodeId> sample_peers(sim::Engine& engine,
                                      std::size_t peer_sample) {
  const auto live = engine.live_ids();
  std::vector<host::NodeId> peers(live.begin(), live.end());
  if (peer_sample > 0 && peers.size() > peer_sample) {
    // Private stream per round: evaluating never perturbs the protocol.
    rng::Rng sampler(0xE7A10001ULL ^
                     (static_cast<std::uint64_t>(engine.round()) + 1) *
                         0x9e3779b97f4a7c15ULL);
    std::vector<host::NodeId> sampled;
    sampled.reserve(peer_sample);
    for (std::size_t idx :
         sampler.sample_indices(peers.size(), peer_sample)) {
      sampled.push_back(peers[idx]);
    }
    peers = std::move(sampled);
  }
  return peers;
}

}  // namespace

EquiDepthPopulationErrors evaluate_equidepth(sim::Engine& engine,
                                             const stats::EmpiricalCdf& truth,
                                             std::size_t peer_sample,
                                             bool include_inherited,
                                             bool missing_counts_as_one) {
  EquiDepthPopulationErrors out;
  const stats::DiscreteErrorEvaluator errors_against_truth(truth);
  stats::RunningStat avg_stat;
  for (host::NodeId id : sample_peers(engine, peer_sample)) {
    const auto* agent = dynamic_cast<const EquiDepthAgent*>(&engine.agent(id));
    const EquiDepthEstimate* est =
        (agent != nullptr && agent->estimate()) ? &*agent->estimate() : nullptr;
    if (est != nullptr && est->inherited && !include_inherited) est = nullptr;
    if (est == nullptr || est->cdf.empty()) {
      ++out.missing;
      if (!missing_counts_as_one) continue;
      out.max_err = 1.0;
      avg_stat.add(1.0);
      continue;
    }
    const stats::ErrorPair errors = errors_against_truth(est->cdf);
    out.max_err = std::max(out.max_err, errors.max_err);
    avg_stat.add(errors.avg_err);
  }
  out.peers = avg_stat.count();
  out.avg_err = avg_stat.mean();
  return out;
}

EquiDepthInstantErrors evaluate_equidepth_phase(
    sim::Engine& engine, wire::InstanceId phase,
    const stats::EmpiricalCdf& truth, std::size_t peer_sample,
    std::optional<host::Round> born_by) {
  EquiDepthInstantErrors out;
  const stats::DiscreteErrorEvaluator errors_against_truth(truth);
  stats::RunningStat entire_avg;
  stats::RunningStat bins_avg;
  for (host::NodeId id : sample_peers(engine, peer_sample)) {
    if (born_by && engine.node(id).birth_round > *born_by) continue;
    const auto* agent = dynamic_cast<const EquiDepthAgent*>(&engine.agent(id));
    const auto synopsis =
        agent != nullptr ? agent->phase_synopsis(phase)
                         : std::vector<stats::WeightedValue>{};
    if (synopsis.empty()) {
      // Not reached yet: maximum error, as in the Adam2 evaluation.
      out.entire.max_err = std::max(out.entire.max_err, 1.0);
      entire_avg.add(1.0);
      out.at_bins.max_err = std::max(out.at_bins.max_err, 1.0);
      bins_avg.add(1.0);
      continue;
    }
    const auto cdf = stats::centroids_to_cdf(synopsis);
    const stats::ErrorPair entire = errors_against_truth(cdf);
    out.entire.max_err = std::max(out.entire.max_err, entire.max_err);
    entire_avg.add(entire.avg_err);
    const auto knots = cdf.knots();
    const stats::ErrorPair at_bins =
        stats::point_errors(truth, {knots.begin(), knots.size()});
    out.at_bins.max_err = std::max(out.at_bins.max_err, at_bins.max_err);
    bins_avg.add(at_bins.avg_err);
  }
  out.peers = entire_avg.count();
  out.entire.avg_err = entire_avg.mean();
  out.at_bins.avg_err = bins_avg.mean();
  return out;
}

}  // namespace adam2::baselines
