// Random-sampling baseline (Hall & Carzaniga, ref [4]).
//
// A node estimates the attribute CDF from `sample_size` uniformly drawn
// attribute values. We model the sampling itself as ideal (a perfect uniform
// sampler is an upper bound on [4]'s quality) and charge the message cost of
// obtaining each sample by a random walk of `walk_hops` messages — the
// paper's point is that 1,000-10,000 samples are needed to match Adam2,
// which makes this approach an order of magnitude more expensive (§VII-I).
#pragma once

#include <span>

#include "rng/rng.hpp"
#include "stats/cdf.hpp"
#include "stats/error_metrics.hpp"

namespace adam2::baselines {

struct SamplingConfig {
  std::size_t sample_size = 1000;
  /// Messages spent per sample (random-walk length). The paper cites
  /// "several network messages per requested sample".
  std::size_t walk_hops = 10;
};

struct SamplingResult {
  stats::ErrorPair errors;
  std::size_t messages = 0;       ///< Total messages the node generated.
  std::size_t bytes_estimate = 0; ///< Assuming ~48 B per walk message.
};

/// Builds the step-CDF estimator from a drawn sample (knots at the sample's
/// distinct values with their empirical fractions).
[[nodiscard]] stats::PiecewiseLinearCdf sample_cdf(
    std::span<const stats::Value> sample);

/// Draws `config.sample_size` values uniformly (with replacement) from
/// `population`, builds the estimator, and returns its errors against the
/// population's true CDF together with the modelled cost.
[[nodiscard]] SamplingResult estimate_by_sampling(
    std::span<const stats::Value> population, const SamplingConfig& config,
    rng::Rng& rng);

}  // namespace adam2::baselines
