// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in this repository takes an explicit Rng (or a
// child split from one) so that experiments are exactly reproducible from a
// single 64-bit seed. The generator is xoshiro256**, seeded through
// SplitMix64; both are public-domain algorithms by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace adam2::rng {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and for cheap stateless hashing of seed material.
[[nodiscard]] constexpr std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with helpers for the distributions the simulator
/// needs. Satisfies std::uniform_random_bit_generator, so it can also be used
/// with <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from a single 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xada002ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = split_mix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child generator. Children with distinct tags (or
  /// from successive calls) have decorrelated streams; used to hand one
  /// stream per node / per subsystem.
  [[nodiscard]] Rng split(std::uint64_t tag = 0) noexcept {
    std::uint64_t material = (*this)() ^ (tag * 0x9e3779b97f4a7c15ULL);
    return Rng{split_mix64(material)};
  }

  /// Full generator state, exposed so checkpoints (host::snapshot) can
  /// persist and resume a stream mid-sequence. The cached Marsaglia normal
  /// is part of the state: without it a restored generator would replay the
  /// next normal() draw differently from the uninterrupted stream.
  struct State {
    std::array<std::uint64_t, 4> words{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  [[nodiscard]] State state() const noexcept {
    // A consumed cache leaves a stale value behind; report the canonical
    // zero instead so two states that behave identically compare (and
    // serialise) identically.
    return State{state_, has_cached_normal_ ? cached_normal_ : 0.0,
                 has_cached_normal_};
  }

  void set_state(const State& state) noexcept {
    state_ = state.words;
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal: exp(N(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Pareto with scale xm > 0 and shape alpha > 0.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to the weights.
  /// Weights must be non-negative and not all zero.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

  /// Reservoir-samples k distinct indices from [0, n). If k >= n, returns
  /// all of [0, n). Result order is unspecified.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace adam2::rng
