#include "rng/rng.hpp"

#include <cassert>
#include <cmath>

namespace adam2::rng {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::pareto(double xm, double alpha) noexcept {
  assert(xm > 0.0 && alpha > 0.0);
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slop: fall back to last index.
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> picked;
  if (k >= n) {
    picked.resize(n);
    for (std::size_t i = 0; i < n; ++i) picked[i] = i;
    return picked;
  }
  picked.reserve(k);
  // Classic reservoir sampling; O(n) but branch-light and unbiased.
  for (std::size_t i = 0; i < n; ++i) {
    if (picked.size() < k) {
      picked.push_back(i);
    } else {
      const std::size_t j = below(i + 1);
      if (j < k) picked[j] = i;
    }
  }
  return picked;
}

}  // namespace adam2::rng
